package streach

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"streach/internal/core"
	"streach/internal/geo"
	"streach/internal/router"
	"streach/internal/shard"
)

// Kind selects what a Request asks for.
type Kind int

const (
	// KindReach is the single-location forward reachability query: which
	// road segments did historical traffic reach from Locations[0] within
	// [Start, Start+Duration] on at least a Prob fraction of days?
	KindReach Kind = iota
	// KindReverse is the mirror catchment query: from which segments can
	// Locations[0] be reached?
	KindReverse
	// KindMulti is the multi-location query over all Locations (the
	// m-query); the answer is the unified Prob-reachable region.
	KindMulti
	// KindRoute plans a route from Locations[0] to Locations[1] departing
	// at Start (time-dependent by default; see AlgoFreeFlow). Duration and
	// Prob are ignored.
	KindRoute
)

// String names the kind for logs and errors.
func (k Kind) String() string {
	switch k {
	case KindReach:
		return "reach"
	case KindReverse:
		return "reverse"
	case KindMulti:
		return "multi"
	case KindRoute:
		return "route"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Algorithm selects the query-processing variant for a Request.
type Algorithm int

const (
	// AlgoAuto picks the paper's algorithm for the request kind: SQMB+TBS
	// for reach/reverse, MQMB+TBS for multi, time-dependent Dijkstra for
	// route.
	AlgoAuto Algorithm = iota
	// AlgoBounded forces the bounded two-phase pipeline (SQMB / MQMB +
	// TBS). Same as AlgoAuto today; named so callers can be explicit.
	AlgoBounded
	// AlgoExhaustive runs the exhaustive-search baseline (reach/reverse
	// only): no bounding phase, every segment within the worst-case radius
	// is verified.
	AlgoExhaustive
	// AlgoSequential answers a multi query by running the single-location
	// pipeline per location and unioning (the m-query baseline of §4.3).
	AlgoSequential
	// AlgoFreeFlow plans a route at static per-class free-flow speeds (the
	// time-invariant baseline; route only).
	AlgoFreeFlow
)

// String names the algorithm for logs and errors.
func (a Algorithm) String() string {
	switch a {
	case AlgoAuto:
		return "auto"
	case AlgoBounded:
		return "bounded"
	case AlgoExhaustive:
		return "exhaustive"
	case AlgoSequential:
		return "sequential"
	case AlgoFreeFlow:
		return "freeflow"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Request is the single query type behind System.Do: every query the
// system answers — forward/reverse reachability, multi-location coverage,
// route planning — is a Request with a Kind.
type Request struct {
	// Kind selects the query type.
	Kind Kind
	// Locations are the query points. KindReach/KindReverse use
	// Locations[0]; KindMulti uses all of them; KindRoute reads
	// Locations[0] as the origin and Locations[1] as the destination.
	Locations []Location
	// Start is the time of day T (for KindRoute: the departure time).
	Start time.Duration
	// Duration is the horizon L. Ignored by KindRoute.
	Duration time.Duration
	// Prob is the required reachability probability in (0, 1]. Ignored by
	// KindRoute. Overridable per call with WithProb.
	Prob float64
}

// ReachRequest builds a single-location forward reachability Request.
func ReachRequest(loc Location, start, dur time.Duration, prob float64) Request {
	return Request{Kind: KindReach, Locations: []Location{loc}, Start: start, Duration: dur, Prob: prob}
}

// ReverseRequest builds a catchment (reverse reachability) Request.
func ReverseRequest(loc Location, start, dur time.Duration, prob float64) Request {
	return Request{Kind: KindReverse, Locations: []Location{loc}, Start: start, Duration: dur, Prob: prob}
}

// MultiRequest builds a multi-location Request.
func MultiRequest(locs []Location, start, dur time.Duration, prob float64) Request {
	return Request{Kind: KindMulti, Locations: locs, Start: start, Duration: dur, Prob: prob}
}

// RouteRequest builds a route-planning Request departing at depart.
func RouteRequest(from, to Location, depart time.Duration) Request {
	return Request{Kind: KindRoute, Locations: []Location{from, to}, Start: depart}
}

// queryOptions is the resolved per-call option set: the engine options
// start from the system's build-time defaults and each With... override
// replaces one knob for this call only.
type queryOptions struct {
	algorithm      Algorithm
	prob           float64
	probSet        bool
	budget         time.Duration
	engine         core.Options
	engineDirty    bool
	batchWorkers   int
	noSharing      bool
	partial        bool          // WithPartialResults: degrade, don't die
	shardBudget    time.Duration // WithShardBudget override
	shardBudgetSet bool
}

// effectiveProb resolves the probability threshold for one request:
// WithProb overrides the request's own Prob.
func (qo queryOptions) effectiveProb(req Request) float64 {
	if qo.probSet {
		return qo.prob
	}
	return req.Prob
}

// Option overrides one engine or dispatch knob for a single Do/DoBatch
// call, without touching the System's build-time configuration.
type Option func(*queryOptions)

// WithAlgorithm selects the processing variant (see Algorithm).
func WithAlgorithm(a Algorithm) Option {
	return func(o *queryOptions) { o.algorithm = a }
}

// WithProb overrides the request's probability threshold.
func WithProb(p float64) Option {
	return func(o *queryOptions) { o.prob, o.probSet = p, true }
}

// WithDeadlineBudget caps the query's processing time: Do derives a
// child context with this timeout, so the query is abandoned (returning
// context.DeadlineExceeded) when the budget runs out. A zero or negative
// budget means no extra deadline beyond the caller's context.
func WithDeadlineBudget(d time.Duration) Option {
	return func(o *queryOptions) { o.budget = d }
}

// WithVerifyWorkers bounds the verification worker pool for this query
// (0 = GOMAXPROCS, 1 = serial), overriding IndexConfig.VerifyWorkers.
func WithVerifyWorkers(n int) Option {
	return func(o *queryOptions) { o.engine.VerifyWorkers, o.engineDirty = n, true }
}

// WithVerifyAll toggles full verification of the maximum bounding region
// (see IndexConfig.VerifyAll) for this query.
func WithVerifyAll(on bool) Option {
	return func(o *queryOptions) { o.engine.VerifyAll, o.engineDirty = on, true }
}

// WithEarlyStop toggles the thesis's literal Algorithm 2 queue variant
// (see IndexConfig.EarlyStop) for this query.
func WithEarlyStop(on bool) Option {
	return func(o *queryOptions) { o.engine.EarlyStop, o.engineDirty = on, true }
}

// WithNoVisitedSet toggles the TBS visited-set ablation for this query.
func WithNoVisitedSet(on bool) Option {
	return func(o *queryOptions) { o.engine.NoVisitedSet, o.engineDirty = on, true }
}

// WithNoOverlapFilter toggles the MQMB overlap-elimination ablation for
// this query.
func WithNoOverlapFilter(on bool) Option {
	return func(o *queryOptions) { o.engine.NoOverlapFilter, o.engineDirty = on, true }
}

// WithBatchWorkers bounds DoBatch's parallelism (0 = min(GOMAXPROCS,
// len(requests))). Ignored by Do.
func WithBatchWorkers(n int) Option {
	return func(o *queryOptions) { o.batchWorkers = n }
}

// WithBatchSharing toggles cross-query work sharing (default on): in
// DoBatch, the group-and-plan scheduler — requests that differ only in
// Prob share one bounding + probe + verification plan — and, in both Do
// and DoBatch, the cross-batch plan cache. Results are bit-identical
// either way; turning it off recovers fully independent execution
// (benchmarks, debugging, tests that pin per-execution observables).
func WithBatchSharing(on bool) Option {
	return func(o *queryOptions) { o.noSharing = !on }
}

// resolveOptions folds the call's options over the system defaults.
func (s *System) resolveOptions(opts []Option) queryOptions {
	qo := queryOptions{engine: s.engine.Options()}
	for _, o := range opts {
		o(&qo)
	}
	return qo
}

// Do answers one Request. It is the single context-first entry point the
// legacy facade methods (Reach, ReachES, ReverseReach, ReachMulti, Route,
// …) now wrap: the context carries cancellation and deadlines into every
// layer below — bounding rounds, Con-Index Dijkstras, the verification
// worker pool, route searches — so an abandoned HTTP request or an
// expired deadline stops the query within one checkpoint interval and
// Do returns ctx.Err().
//
// Options override the system's build-time engine configuration for this
// call only (per-query ablations, verification parallelism, probability,
// algorithm, deadline budget).
//
// For KindRoute the returned Region holds the path in SegmentIDs and the
// journey in Region.Route; all other kinds fill the usual reachability
// region fields.
func (s *System) Do(ctx context.Context, req Request, opts ...Option) (*Region, error) {
	qo := s.resolveOptions(opts)
	region, err := s.do(ctx, req, qo)
	return region, wrapError(req.Kind.String(), err)
}

func (s *System) do(ctx context.Context, req Request, qo queryOptions) (*Region, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if qo.budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, qo.budget)
		defer cancel()
	}
	prob := req.Prob
	if qo.probSet {
		prob = qo.prob
	}

	switch req.Kind {
	case KindReach, KindReverse:
		if len(req.Locations) < 1 {
			return nil, errInvalid(req.Kind.String(), "streach: %v request needs a location", req.Kind)
		}
		switch qo.algorithm {
		case AlgoAuto, AlgoBounded, AlgoExhaustive:
		default:
			return nil, errInvalid(req.Kind.String(), "streach: algorithm %v does not answer %v requests", qo.algorithm, req.Kind)
		}
		return s.doPlan(ctx, req, qo, prob)

	case KindMulti:
		if len(req.Locations) == 0 {
			return nil, errInvalid("multi", "streach: multi request needs at least one location")
		}
		switch qo.algorithm {
		case AlgoAuto, AlgoBounded, AlgoSequential:
		case AlgoExhaustive:
			return nil, errInvalid("multi", "streach: exhaustive search has no multi-location variant; use sequential")
		default:
			return nil, errInvalid("multi", "streach: algorithm %v does not answer multi requests", qo.algorithm)
		}
		return s.doPlan(ctx, req, qo, prob)

	case KindRoute:
		if len(req.Locations) < 2 {
			return nil, errInvalid("route", "streach: route request needs origin and destination locations")
		}
		switch qo.algorithm {
		case AlgoAuto, AlgoBounded, AlgoFreeFlow:
		default:
			return nil, errInvalid("route", "streach: algorithm %v does not answer route requests", qo.algorithm)
		}
		return s.doRoute(ctx, req.Locations[0], req.Locations[1], req.Start, qo.algorithm == AlgoFreeFlow)

	default:
		return nil, errInvalid("do", "streach: unknown request kind %v", req.Kind)
	}
}

// doPlan answers one reachability request plan-first: probability
// validated up front (matching the one-shot engine methods' validation
// order), then a shared plan — cached, sharded, or freshly built — and
// one ResultAt at the request's threshold.
func (s *System) doPlan(ctx context.Context, req Request, qo queryOptions, prob float64) (*Region, error) {
	if err := core.ValidateProb(prob); err != nil {
		return nil, err
	}
	plan, key, cacheable, err := s.acquirePlan(ctx, req, qo)
	if err != nil {
		return nil, err
	}
	// Deferred so the plan (and its pooled bounding regions) is released
	// on every exit, including a panic unwinding through ResultAt.
	defer func() { s.releasePlan(key, cacheable, plan) }()
	res, rerr := plan.ResultAt(ctx, prob)
	if rerr != nil {
		return nil, rerr
	}
	// Capture the loss record before the plan is released (a released
	// plan may be reused or closed by another goroutine).
	var deg *shard.Degraded
	if p, ok := plan.(interface{ Degraded() *shard.Degraded }); ok {
		deg = p.Degraded()
	}
	region := s.region(res)
	if deg != nil {
		region.Degraded = newDegraded(deg)
	}
	return region, nil
}

// acquirePlan resolves the shared plan for a reachability request: from
// the cross-batch cache when an equivalent plan is parked there, else
// freshly built — on the shard cluster when the system is sharded, on
// the (possibly option-overridden) engine otherwise.
func (s *System) acquirePlan(ctx context.Context, req Request, qo queryOptions) (plan queryPlan, key string, cacheable bool, err error) {
	cacheable = s.plans != nil && !qo.noSharing && req.Kind != KindRoute && groupable(req, qo)
	if cacheable {
		// The data-version suffix keeps cached plans from outliving the
		// data they were computed from: a live ingest append or a
		// compaction bumps the version, so a plan parked before it can
		// never answer a query issued after it. (Intra-batch grouping
		// uses the bare groupKey — members of one DoBatch call share a
		// plan regardless of concurrent ingest, which is the same
		// query-raced-the-ingest linearization a single query has.)
		key = groupKey(req, qo) + "|" + s.DataVersionKey()
		if pl, ok := s.plans.take(key); ok {
			s.sharing.planHits.Add(1)
			pl.Rebase()
			return pl, key, true, nil
		}
		s.sharing.planMisses.Add(1)
		// An organic miss is exactly the signal the warm-plan pipeline
		// feeds on: record the shape so the next epoch swap can rebuild
		// this plan before traffic asks for it.
		s.recordPlanShape(req, qo)
	}
	plan, err = s.newPlan(ctx, req, qo)
	return plan, key, cacheable, err
}

// releasePlan parks a cacheable plan for the next equivalent query, or
// closes it.
func (s *System) releasePlan(key string, cacheable bool, plan queryPlan) {
	if cacheable {
		s.plans.put(key, plan)
	} else {
		plan.Close()
	}
}

// planBackend is one execution backend's plan constructors — the shard
// cluster or the single engine, adapted to the common queryPlan surface
// so newPlan dispatches kind and algorithm exactly once.
type planBackend struct {
	reach, reverse, reachES, reverseES func(context.Context, core.Query) (queryPlan, error)
	multi, multiSeq                    func(context.Context, core.MultiQuery) (queryPlan, error)
}

func clusterBackend(c *shard.Cluster) planBackend {
	return planBackend{
		reach:     func(ctx context.Context, q core.Query) (queryPlan, error) { return c.PlanReach(ctx, q) },
		reverse:   func(ctx context.Context, q core.Query) (queryPlan, error) { return c.PlanReverse(ctx, q) },
		reachES:   func(ctx context.Context, q core.Query) (queryPlan, error) { return c.PlanReachES(ctx, q) },
		reverseES: func(ctx context.Context, q core.Query) (queryPlan, error) { return c.PlanReverseES(ctx, q) },
		multi:     func(ctx context.Context, q core.MultiQuery) (queryPlan, error) { return c.PlanMulti(ctx, q) },
		multiSeq:  func(ctx context.Context, q core.MultiQuery) (queryPlan, error) { return c.PlanMultiSequential(ctx, q) },
	}
}

func engineBackend(e *core.Engine) planBackend {
	return planBackend{
		reach:     func(ctx context.Context, q core.Query) (queryPlan, error) { return e.PlanReach(ctx, q) },
		reverse:   func(ctx context.Context, q core.Query) (queryPlan, error) { return e.PlanReverse(ctx, q) },
		reachES:   func(ctx context.Context, q core.Query) (queryPlan, error) { return e.PlanReachES(ctx, q) },
		reverseES: func(ctx context.Context, q core.Query) (queryPlan, error) { return e.PlanReverseES(ctx, q) },
		multi:     func(ctx context.Context, q core.MultiQuery) (queryPlan, error) { return e.PlanMulti(ctx, q) },
		multiSeq:  func(ctx context.Context, q core.MultiQuery) (queryPlan, error) { return e.PlanMultiSequential(ctx, q) },
	}
}

// newPlan builds the shared plan for one reachability request on the
// shard cluster when the system is sharded, else on the single engine.
// The request's kind/algorithm pairing must already be validated.
func (s *System) newPlan(ctx context.Context, req Request, qo queryOptions) (queryPlan, error) {
	var be planBackend
	if c := s.cluster.Load(); c != nil {
		if qo.engineDirty {
			c = c.WithOptions(qo.engine)
		}
		if qo.partial {
			c = c.WithPartialResults(true)
		}
		if qo.shardBudgetSet {
			c = c.WithShardBudget(qo.shardBudget)
		}
		be = clusterBackend(c)
	} else {
		eng := s.engine
		if qo.engineDirty {
			eng = s.engine.WithOptions(qo.engine)
		}
		be = engineBackend(eng)
	}
	switch req.Kind {
	case KindReach, KindReverse:
		q := core.Query{
			Location: geo.Point{Lat: req.Locations[0].Lat, Lng: req.Locations[0].Lng},
			Start:    req.Start,
			Duration: req.Duration,
		}
		switch {
		case qo.algorithm == AlgoExhaustive && req.Kind == KindReverse:
			return be.reverseES(ctx, q)
		case qo.algorithm == AlgoExhaustive:
			return be.reachES(ctx, q)
		case req.Kind == KindReverse:
			return be.reverse(ctx, q)
		default:
			return be.reach(ctx, q)
		}
	case KindMulti:
		mq := core.MultiQuery{
			Locations: toPoints(req.Locations),
			Start:     req.Start,
			Duration:  req.Duration,
		}
		if qo.algorithm == AlgoSequential {
			return be.multiSeq(ctx, mq)
		}
		return be.multi(ctx, mq)
	}
	return nil, fmt.Errorf("streach: no plan for %v requests", req.Kind)
}

// doRoute answers KindRoute: the region's SegmentIDs hold the path and
// Region.Route the journey summary.
func (s *System) doRoute(ctx context.Context, from, to Location, departAt time.Duration, freeFlow bool) (*Region, error) {
	began := time.Now()
	src, _, _, ok := s.net.SnapPoint(geo.Point{Lat: from.Lat, Lng: from.Lng})
	if !ok {
		return nil, errInvalid("route", "streach: no road near %+v", from)
	}
	dst, _, _, ok := s.net.SnapPoint(geo.Point{Lat: to.Lat, Lng: to.Lng})
	if !ok {
		return nil, errInvalid("route", "streach: no road near %+v", to)
	}
	rt := router.New(s.net, s.con)
	var (
		r   *router.Route
		err error
	)
	if freeFlow {
		r, err = rt.FreeFlow(ctx, src, dst)
	} else {
		r, err = rt.TimeDependent(ctx, src, dst, departAt.Seconds())
	}
	if err != nil {
		return nil, err
	}
	route := routeResult(r)
	return &Region{
		SegmentIDs: append([]int32(nil), route.SegmentIDs...),
		RoadKm:     route.DistanceKm,
		Route:      route,
		Metrics:    Metrics{Elapsed: time.Since(began), RoadKm: route.DistanceKm, RoadSegments: len(route.SegmentIDs)},
		sys:        s,
	}, nil
}

func routeResult(r *router.Route) *RouteResult {
	ids := make([]int32, len(r.Path))
	for i, s := range r.Path {
		ids[i] = int32(s)
	}
	return &RouteResult{
		SegmentIDs: ids,
		TravelTime: time.Duration(r.TravelTimeSec * float64(time.Second)),
		DistanceKm: r.DistanceMeters / 1000,
	}
}

// BatchResult pairs one DoBatch request with its answer (or error).
type BatchResult struct {
	// Region is the answer; nil when Err is set.
	Region *Region
	// Err is the per-request failure, context.Canceled /
	// context.DeadlineExceeded when the batch context ended before the
	// request completed.
	Err error
}

// DoBatch answers every request and returns one BatchResult per request,
// positionally. A cancelled or expired ctx stops in-flight queries at
// their next checkpoint and marks every unfinished request with
// ctx.Err(); options apply to every request in the batch (use
// WithBatchWorkers to bound the parallelism).
//
// DoBatch is batch-aware: requests asking about the same (kind, start
// set, start time, window, algorithm) — differing only in Prob — are
// grouped, and each group is planned once (core.SharedPlan): one
// bounding-region search, one materialised probe start-set, one
// verification pass building a per-candidate empirical-probability map
// that every member's threshold is resolved from. Group results are
// bit-identical to independent execution (the single-query path runs the
// same plan machinery); WithBatchSharing(false) disables grouping. The
// scheduling unit is a group, so a mid-batch cancellation fails a whole
// group at once and unstarted groups are marked without planning.
func (s *System) DoBatch(ctx context.Context, reqs []Request, opts ...Option) []BatchResult {
	out := make([]BatchResult, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	qo := s.resolveOptions(opts)

	// Each unit is one scheduling item: a singleton request, or a group
	// of request indexes sharing one plan. Units preserve first-seen
	// request order.
	var units [][]int
	if qo.noSharing {
		units = make([][]int, len(reqs))
		for i := range reqs {
			units[i] = []int{i}
		}
	} else {
		byKey := map[string]int{}
		for i, req := range reqs {
			if !groupable(req, qo) {
				units = append(units, []int{i})
				continue
			}
			k := groupKey(req, qo)
			if u, ok := byKey[k]; ok {
				units[u] = append(units[u], i)
			} else {
				byKey[k] = len(units)
				units = append(units, []int{i})
			}
		}
	}

	workers := qo.batchWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(units) {
		workers = len(units)
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				u := int(next.Add(1)) - 1
				if u >= len(units) {
					return
				}
				idxs := units[u]
				if err := ctx.Err(); err != nil {
					for _, i := range idxs {
						out[i] = BatchResult{Err: err}
					}
					continue // mark the rest, don't start new work
				}
				if len(idxs) == 1 {
					i := idxs[0]
					region, err := s.do(ctx, reqs[i], qo)
					out[i] = BatchResult{Region: region, Err: wrapError(reqs[i].Kind.String(), err)}
					continue
				}
				s.doGroup(ctx, reqs, idxs, qo, out)
			}
		}()
	}
	wg.Wait()
	return out
}

// groupable reports whether the request can ride a shared plan: a valid
// kind/algorithm pairing with the locations and probability it needs.
// Malformed requests take the singleton path so their error is exactly
// what independent execution would return, and so does any request with
// a deadline budget — the budget is a per-query guarantee, which a plan
// shared across members cannot honour bit-identically under time
// pressure.
func groupable(req Request, qo queryOptions) bool {
	if qo.budget > 0 {
		return false
	}
	// Partial-results plans are only valid for the shard failures they
	// observed, and a per-call shard budget is a per-query latency
	// guarantee — neither can ride a plan shared with other queries.
	if qo.partial || qo.shardBudgetSet {
		return false
	}
	switch req.Kind {
	case KindReach, KindReverse:
		if len(req.Locations) < 1 {
			return false
		}
		switch qo.algorithm {
		case AlgoAuto, AlgoBounded, AlgoExhaustive:
		default:
			return false
		}
	case KindMulti:
		if len(req.Locations) == 0 {
			return false
		}
		switch qo.algorithm {
		case AlgoAuto, AlgoBounded, AlgoSequential:
		default:
			return false
		}
	case KindRoute:
		// Route answers are Prob-independent: only literally identical
		// requests group, and they share one computed journey.
		return len(req.Locations) >= 2
	default:
		return false
	}
	p := qo.effectiveProb(req)
	return p > 0 && p <= 1
}

// groupKey canonicalises everything that determines a request's shared
// plan — kind, algorithm, the result-affecting engine options, start
// set, start time, and (except for routes, which ignore it) the window.
// Prob is deliberately absent: that is the axis the plan is shared
// across. The options matter because the key outlives one DoBatch call:
// it is also the cross-batch plan-cache key, and two executions that
// differ in any result-affecting option (WithVerifyAll, WithEarlyStop,
// WithNoVisitedSet, WithNoOverlapFilter) must never share a plan.
// VerifyWorkers is excluded on purpose — it changes cost, not results.
// The serving layer's coalesceKey (internal/serve) mirrors this
// serialisation but includes Prob, because it shares whole answers, not
// plans — keep the two in step when Request grows a field.
func groupKey(req Request, qo queryOptions) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d|%d|%s|%d", int(req.Kind), int(qo.algorithm), engineOptionBits(qo.engine), req.Start)
	if req.Kind != KindRoute {
		fmt.Fprintf(&b, "|%d", req.Duration)
	}
	for _, l := range req.Locations {
		fmt.Fprintf(&b, "|%x,%x", math.Float64bits(l.Lat), math.Float64bits(l.Lng))
	}
	return b.String()
}

// engineOptionBits packs the result-affecting engine options into the
// canonical key segment shared by groupKey and serve's coalesceKey.
func engineOptionBits(o core.Options) string {
	bits := 0
	if o.VerifyAll {
		bits |= 1
	}
	if o.EarlyStop {
		bits |= 2
	}
	if o.NoVisitedSet {
		bits |= 4
	}
	if o.NoOverlapFilter {
		bits |= 8
	}
	return "o" + strconv.Itoa(bits)
}

// OptionKeyBits canonicalises the result-affecting engine options into
// the key segment shared by the batch group key and the serving layer's
// coalesce key (internal/serve) — the two serialisations must stay in
// step, so both call this.
func OptionKeyBits(o core.Options) string { return engineOptionBits(o) }

// doGroup answers one group of requests off a single shared plan. Plan
// failure (including cancellation mid-plan) reclaims the whole group:
// every member is marked with the same error.
func (s *System) doGroup(ctx context.Context, reqs []Request, idxs []int, qo queryOptions, out []BatchResult) {
	rep := reqs[idxs[0]]
	op := rep.Kind.String()
	fail := func(err error) {
		err = wrapError(op, err)
		for _, i := range idxs {
			out[i] = BatchResult{Err: err}
		}
	}
	if rep.Kind == KindRoute {
		// One journey computation, cloned per member.
		region, err := s.do(ctx, rep, qo)
		if err != nil {
			fail(err)
			return
		}
		out[idxs[0]] = BatchResult{Region: region}
		for _, i := range idxs[1:] {
			out[i] = BatchResult{Region: cloneRegion(region)}
		}
		s.sharing.groups.Add(1)
		s.sharing.coalesced.Add(int64(len(idxs) - 1))
		return
	}

	plan, key, cacheable, err := s.acquirePlan(ctx, rep, qo)
	if err != nil {
		fail(err)
		return
	}
	defer func() { s.releasePlan(key, cacheable, plan) }()

	for _, i := range idxs {
		if err := ctx.Err(); err != nil {
			out[i] = BatchResult{Err: err}
			continue
		}
		res, rerr := plan.ResultAt(ctx, qo.effectiveProb(reqs[i]))
		if rerr != nil {
			out[i] = BatchResult{Err: wrapError(op, rerr)}
			continue
		}
		out[i] = BatchResult{Region: s.region(res)}
	}

	shared := int64(len(idxs) - 1)
	s.sharing.groups.Add(1)
	s.sharing.coalesced.Add(shared)
	s.sharing.probeSets.Add(shared)
	rows := plan.RowStats()
	// Rows the member queries did not have to re-resolve: the pin's own
	// local hits plus one full working-set fetch per extra member.
	s.sharing.rowsShared.Add(rows.Hits + rows.Fetched*shared)
}
