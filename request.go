package streach

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"streach/internal/core"
	"streach/internal/geo"
	"streach/internal/router"
)

// Kind selects what a Request asks for.
type Kind int

const (
	// KindReach is the single-location forward reachability query: which
	// road segments did historical traffic reach from Locations[0] within
	// [Start, Start+Duration] on at least a Prob fraction of days?
	KindReach Kind = iota
	// KindReverse is the mirror catchment query: from which segments can
	// Locations[0] be reached?
	KindReverse
	// KindMulti is the multi-location query over all Locations (the
	// m-query); the answer is the unified Prob-reachable region.
	KindMulti
	// KindRoute plans a route from Locations[0] to Locations[1] departing
	// at Start (time-dependent by default; see AlgoFreeFlow). Duration and
	// Prob are ignored.
	KindRoute
)

// String names the kind for logs and errors.
func (k Kind) String() string {
	switch k {
	case KindReach:
		return "reach"
	case KindReverse:
		return "reverse"
	case KindMulti:
		return "multi"
	case KindRoute:
		return "route"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Algorithm selects the query-processing variant for a Request.
type Algorithm int

const (
	// AlgoAuto picks the paper's algorithm for the request kind: SQMB+TBS
	// for reach/reverse, MQMB+TBS for multi, time-dependent Dijkstra for
	// route.
	AlgoAuto Algorithm = iota
	// AlgoBounded forces the bounded two-phase pipeline (SQMB / MQMB +
	// TBS). Same as AlgoAuto today; named so callers can be explicit.
	AlgoBounded
	// AlgoExhaustive runs the exhaustive-search baseline (reach/reverse
	// only): no bounding phase, every segment within the worst-case radius
	// is verified.
	AlgoExhaustive
	// AlgoSequential answers a multi query by running the single-location
	// pipeline per location and unioning (the m-query baseline of §4.3).
	AlgoSequential
	// AlgoFreeFlow plans a route at static per-class free-flow speeds (the
	// time-invariant baseline; route only).
	AlgoFreeFlow
)

// String names the algorithm for logs and errors.
func (a Algorithm) String() string {
	switch a {
	case AlgoAuto:
		return "auto"
	case AlgoBounded:
		return "bounded"
	case AlgoExhaustive:
		return "exhaustive"
	case AlgoSequential:
		return "sequential"
	case AlgoFreeFlow:
		return "freeflow"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Request is the single query type behind System.Do: every query the
// system answers — forward/reverse reachability, multi-location coverage,
// route planning — is a Request with a Kind.
type Request struct {
	// Kind selects the query type.
	Kind Kind
	// Locations are the query points. KindReach/KindReverse use
	// Locations[0]; KindMulti uses all of them; KindRoute reads
	// Locations[0] as the origin and Locations[1] as the destination.
	Locations []Location
	// Start is the time of day T (for KindRoute: the departure time).
	Start time.Duration
	// Duration is the horizon L. Ignored by KindRoute.
	Duration time.Duration
	// Prob is the required reachability probability in (0, 1]. Ignored by
	// KindRoute. Overridable per call with WithProb.
	Prob float64
}

// ReachRequest builds a single-location forward reachability Request.
func ReachRequest(loc Location, start, dur time.Duration, prob float64) Request {
	return Request{Kind: KindReach, Locations: []Location{loc}, Start: start, Duration: dur, Prob: prob}
}

// ReverseRequest builds a catchment (reverse reachability) Request.
func ReverseRequest(loc Location, start, dur time.Duration, prob float64) Request {
	return Request{Kind: KindReverse, Locations: []Location{loc}, Start: start, Duration: dur, Prob: prob}
}

// MultiRequest builds a multi-location Request.
func MultiRequest(locs []Location, start, dur time.Duration, prob float64) Request {
	return Request{Kind: KindMulti, Locations: locs, Start: start, Duration: dur, Prob: prob}
}

// RouteRequest builds a route-planning Request departing at depart.
func RouteRequest(from, to Location, depart time.Duration) Request {
	return Request{Kind: KindRoute, Locations: []Location{from, to}, Start: depart}
}

// queryOptions is the resolved per-call option set: the engine options
// start from the system's build-time defaults and each With... override
// replaces one knob for this call only.
type queryOptions struct {
	algorithm    Algorithm
	prob         float64
	probSet      bool
	budget       time.Duration
	engine       core.Options
	engineDirty  bool
	batchWorkers int
}

// Option overrides one engine or dispatch knob for a single Do/DoBatch
// call, without touching the System's build-time configuration.
type Option func(*queryOptions)

// WithAlgorithm selects the processing variant (see Algorithm).
func WithAlgorithm(a Algorithm) Option {
	return func(o *queryOptions) { o.algorithm = a }
}

// WithProb overrides the request's probability threshold.
func WithProb(p float64) Option {
	return func(o *queryOptions) { o.prob, o.probSet = p, true }
}

// WithDeadlineBudget caps the query's processing time: Do derives a
// child context with this timeout, so the query is abandoned (returning
// context.DeadlineExceeded) when the budget runs out. A zero or negative
// budget means no extra deadline beyond the caller's context.
func WithDeadlineBudget(d time.Duration) Option {
	return func(o *queryOptions) { o.budget = d }
}

// WithVerifyWorkers bounds the verification worker pool for this query
// (0 = GOMAXPROCS, 1 = serial), overriding IndexConfig.VerifyWorkers.
func WithVerifyWorkers(n int) Option {
	return func(o *queryOptions) { o.engine.VerifyWorkers, o.engineDirty = n, true }
}

// WithVerifyAll toggles full verification of the maximum bounding region
// (see IndexConfig.VerifyAll) for this query.
func WithVerifyAll(on bool) Option {
	return func(o *queryOptions) { o.engine.VerifyAll, o.engineDirty = on, true }
}

// WithEarlyStop toggles the thesis's literal Algorithm 2 queue variant
// (see IndexConfig.EarlyStop) for this query.
func WithEarlyStop(on bool) Option {
	return func(o *queryOptions) { o.engine.EarlyStop, o.engineDirty = on, true }
}

// WithNoVisitedSet toggles the TBS visited-set ablation for this query.
func WithNoVisitedSet(on bool) Option {
	return func(o *queryOptions) { o.engine.NoVisitedSet, o.engineDirty = on, true }
}

// WithNoOverlapFilter toggles the MQMB overlap-elimination ablation for
// this query.
func WithNoOverlapFilter(on bool) Option {
	return func(o *queryOptions) { o.engine.NoOverlapFilter, o.engineDirty = on, true }
}

// WithBatchWorkers bounds DoBatch's parallelism (0 = min(GOMAXPROCS,
// len(requests))). Ignored by Do.
func WithBatchWorkers(n int) Option {
	return func(o *queryOptions) { o.batchWorkers = n }
}

// resolveOptions folds the call's options over the system defaults.
func (s *System) resolveOptions(opts []Option) queryOptions {
	qo := queryOptions{engine: s.engine.Options()}
	for _, o := range opts {
		o(&qo)
	}
	return qo
}

// Do answers one Request. It is the single context-first entry point the
// legacy facade methods (Reach, ReachES, ReverseReach, ReachMulti, Route,
// …) now wrap: the context carries cancellation and deadlines into every
// layer below — bounding rounds, Con-Index Dijkstras, the verification
// worker pool, route searches — so an abandoned HTTP request or an
// expired deadline stops the query within one checkpoint interval and
// Do returns ctx.Err().
//
// Options override the system's build-time engine configuration for this
// call only (per-query ablations, verification parallelism, probability,
// algorithm, deadline budget).
//
// For KindRoute the returned Region holds the path in SegmentIDs and the
// journey in Region.Route; all other kinds fill the usual reachability
// region fields.
func (s *System) Do(ctx context.Context, req Request, opts ...Option) (*Region, error) {
	qo := s.resolveOptions(opts)
	return s.do(ctx, req, qo)
}

func (s *System) do(ctx context.Context, req Request, qo queryOptions) (*Region, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if qo.budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, qo.budget)
		defer cancel()
	}
	eng := s.engine
	if qo.engineDirty {
		eng = s.engine.WithOptions(qo.engine)
	}
	prob := req.Prob
	if qo.probSet {
		prob = qo.prob
	}

	switch req.Kind {
	case KindReach, KindReverse:
		if len(req.Locations) < 1 {
			return nil, fmt.Errorf("streach: %v request needs a location", req.Kind)
		}
		q := core.Query{
			Location: geo.Point{Lat: req.Locations[0].Lat, Lng: req.Locations[0].Lng},
			Start:    req.Start,
			Duration: req.Duration,
			Prob:     prob,
		}
		var (
			res *core.Result
			err error
		)
		switch qo.algorithm {
		case AlgoAuto, AlgoBounded:
			if req.Kind == KindReverse {
				res, err = eng.ReverseSQMB(ctx, q)
			} else {
				res, err = eng.SQMB(ctx, q)
			}
		case AlgoExhaustive:
			if req.Kind == KindReverse {
				res, err = eng.ReverseES(ctx, q)
			} else {
				res, err = eng.ES(ctx, q)
			}
		default:
			return nil, fmt.Errorf("streach: algorithm %v does not answer %v requests", qo.algorithm, req.Kind)
		}
		if err != nil {
			return nil, err
		}
		return s.region(res), nil

	case KindMulti:
		if len(req.Locations) == 0 {
			return nil, fmt.Errorf("streach: multi request needs at least one location")
		}
		mq := core.MultiQuery{
			Locations: toPoints(req.Locations),
			Start:     req.Start,
			Duration:  req.Duration,
			Prob:      prob,
		}
		var (
			res *core.Result
			err error
		)
		switch qo.algorithm {
		case AlgoAuto, AlgoBounded:
			res, err = eng.MQMB(ctx, mq)
		case AlgoSequential:
			res, err = eng.SQuerySequential(ctx, mq)
		case AlgoExhaustive:
			return nil, fmt.Errorf("streach: exhaustive search has no multi-location variant; use sequential")
		default:
			return nil, fmt.Errorf("streach: algorithm %v does not answer multi requests", qo.algorithm)
		}
		if err != nil {
			return nil, err
		}
		return s.region(res), nil

	case KindRoute:
		if len(req.Locations) < 2 {
			return nil, fmt.Errorf("streach: route request needs origin and destination locations")
		}
		switch qo.algorithm {
		case AlgoAuto, AlgoBounded, AlgoFreeFlow:
		default:
			return nil, fmt.Errorf("streach: algorithm %v does not answer route requests", qo.algorithm)
		}
		return s.doRoute(ctx, req.Locations[0], req.Locations[1], req.Start, qo.algorithm == AlgoFreeFlow)

	default:
		return nil, fmt.Errorf("streach: unknown request kind %v", req.Kind)
	}
}

// doRoute answers KindRoute: the region's SegmentIDs hold the path and
// Region.Route the journey summary.
func (s *System) doRoute(ctx context.Context, from, to Location, departAt time.Duration, freeFlow bool) (*Region, error) {
	began := time.Now()
	src, _, _, ok := s.net.SnapPoint(geo.Point{Lat: from.Lat, Lng: from.Lng})
	if !ok {
		return nil, fmt.Errorf("streach: no road near %+v", from)
	}
	dst, _, _, ok := s.net.SnapPoint(geo.Point{Lat: to.Lat, Lng: to.Lng})
	if !ok {
		return nil, fmt.Errorf("streach: no road near %+v", to)
	}
	rt := router.New(s.net, s.con)
	var (
		r   *router.Route
		err error
	)
	if freeFlow {
		r, err = rt.FreeFlow(ctx, src, dst)
	} else {
		r, err = rt.TimeDependent(ctx, src, dst, departAt.Seconds())
	}
	if err != nil {
		return nil, err
	}
	route := routeResult(r)
	return &Region{
		SegmentIDs: append([]int32(nil), route.SegmentIDs...),
		RoadKm:     route.DistanceKm,
		Route:      route,
		Metrics:    Metrics{Elapsed: time.Since(began), RoadKm: route.DistanceKm, RoadSegments: len(route.SegmentIDs)},
		sys:        s,
	}, nil
}

func routeResult(r *router.Route) *RouteResult {
	ids := make([]int32, len(r.Path))
	for i, s := range r.Path {
		ids[i] = int32(s)
	}
	return &RouteResult{
		SegmentIDs: ids,
		TravelTime: time.Duration(r.TravelTimeSec * float64(time.Second)),
		DistanceKm: r.DistanceMeters / 1000,
	}
}

// BatchResult pairs one DoBatch request with its answer (or error).
type BatchResult struct {
	// Region is the answer; nil when Err is set.
	Region *Region
	// Err is the per-request failure, context.Canceled /
	// context.DeadlineExceeded when the batch context ended before the
	// request completed.
	Err error
}

// DoBatch answers every request with a bounded worker pool and returns
// one BatchResult per request, positionally. A cancelled or expired ctx
// stops in-flight queries at their next checkpoint and marks every
// unfinished request with ctx.Err(); options apply to every request in
// the batch (use WithBatchWorkers to bound the parallelism).
func (s *System) DoBatch(ctx context.Context, reqs []Request, opts ...Option) []BatchResult {
	out := make([]BatchResult, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	qo := s.resolveOptions(opts)
	workers := qo.batchWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(reqs) {
		workers = len(reqs)
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(reqs) {
					return
				}
				if err := ctx.Err(); err != nil {
					out[i] = BatchResult{Err: err}
					continue // mark the rest, don't start new work
				}
				region, err := s.do(ctx, reqs[i], qo)
				out[i] = BatchResult{Region: region, Err: err}
			}
		}()
	}
	wg.Wait()
	return out
}
