// Benchmark harness: one benchmark per table and figure of the thesis's
// evaluation chapter, plus ablations of the design choices called out in
// DESIGN.md §5. Each figure benchmark regenerates the paper's rows and
// prints them (captured in bench_output.txt); see EXPERIMENTS.md for the
// paper-vs-measured comparison.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Set STREACH_BENCH_FULL=1 to use the full 150-taxi / 30-day world.
package streach_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"streach"
	"streach/internal/core"
	"streach/internal/experiments"
	"streach/internal/geo"
)

var (
	benchOnce  sync.Once
	benchWorld *experiments.World
	benchErr   error
)

func world(b *testing.B) *experiments.World {
	b.Helper()
	benchOnce.Do(func() {
		cfg := experiments.DefaultConfig()
		if os.Getenv("STREACH_BENCH_FULL") == "" {
			// Laptop-friendly default; the full config is opt-in.
			cfg.Taxis = 250
			cfg.Days = 20
		}
		t0 := time.Now()
		benchWorld, benchErr = experiments.BuildWorld(cfg)
		if benchErr == nil {
			fmt.Printf("# bench world: %dx%d city, %d taxis x %d days (built in %.1fs)\n",
				cfg.CityRows, cfg.CityCols, cfg.Taxis, cfg.Days, time.Since(t0).Seconds())
		}
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchWorld
}

// report prints a figure's rows once per benchmark run.
func report(b *testing.B, i int, print func()) {
	if i == 0 {
		print()
	}
}

func BenchmarkTable41Dataset(b *testing.B) {
	w := world(b)
	for i := 0; i < b.N; i++ {
		if err := experiments.Table41(os.Stdout, w); err != nil {
			b.Fatal(err)
		}
		experiments.Table42(os.Stdout)
	}
}

func BenchmarkFig41DurationTime(b *testing.B) {
	w := world(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig41(w)
		if err != nil {
			b.Fatal(err)
		}
		report(b, i, func() { experiments.PrintFig41(os.Stdout, rows) })
	}
}

// BenchmarkFig41DurationLength shares Fig41's sweep; the road-length
// series is panel (b) of the same figure and is included in the printed
// rows. This alias keeps DESIGN.md's per-experiment index one-to-one.
func BenchmarkFig41DurationLength(b *testing.B) {
	BenchmarkFig41DurationTime(b)
}

func BenchmarkFig42Regions(b *testing.B) {
	w := world(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig42(w)
		if err != nil {
			b.Fatal(err)
		}
		report(b, i, func() { experiments.PrintFig42(os.Stdout, rows) })
	}
}

func BenchmarkFig43ProbTime(b *testing.B) {
	w := world(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig43(w)
		if err != nil {
			b.Fatal(err)
		}
		report(b, i, func() { experiments.PrintFig43(os.Stdout, rows) })
	}
}

// BenchmarkFig43ProbLength is panel (b) of Fig 4.3 (see the km columns).
func BenchmarkFig43ProbLength(b *testing.B) {
	BenchmarkFig43ProbTime(b)
}

func BenchmarkFig44ProbRegions(b *testing.B) {
	w := world(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig44(w)
		if err != nil {
			b.Fatal(err)
		}
		report(b, i, func() { experiments.PrintFig44(os.Stdout, rows) })
	}
}

func BenchmarkFig45StartTime(b *testing.B) {
	w := world(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig45(w)
		if err != nil {
			b.Fatal(err)
		}
		report(b, i, func() { experiments.PrintFig45(os.Stdout, rows) })
	}
}

// BenchmarkFig45StartLength is panel (b) of Fig 4.5 (the km columns).
func BenchmarkFig45StartLength(b *testing.B) {
	BenchmarkFig45StartTime(b)
}

func BenchmarkFig46StartRegions(b *testing.B) {
	w := world(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig46(w)
		if err != nil {
			b.Fatal(err)
		}
		report(b, i, func() { experiments.PrintFig46(os.Stdout, rows) })
	}
}

func BenchmarkFig47Interval(b *testing.B) {
	w := world(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig47(w)
		if err != nil {
			b.Fatal(err)
		}
		report(b, i, func() { experiments.PrintFig47(os.Stdout, rows) })
	}
}

func BenchmarkFig48aMQueryDuration(b *testing.B) {
	w := world(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig48a(w)
		if err != nil {
			b.Fatal(err)
		}
		report(b, i, func() { experiments.PrintFig48a(os.Stdout, rows) })
	}
}

func BenchmarkFig48bMQueryLocations(b *testing.B) {
	w := world(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig48b(w, 10)
		if err != nil {
			b.Fatal(err)
		}
		report(b, i, func() { experiments.PrintFig48b(os.Stdout, rows) })
	}
}

func BenchmarkFig49Union(b *testing.B) {
	w := world(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig49(w)
		if err != nil {
			b.Fatal(err)
		}
		report(b, i, func() { experiments.PrintFig49(os.Stdout, res) })
	}
}

// --- Verification fast path ---

// BenchmarkProbe measures the verification inner loop: an exhaustive
// query is dominated by per-segment probes of the on-disk time lists, so
// ns/op here tracks the bitset + decoded-cache fast path directly.
// verified/op reports how many segments each query probes.
func BenchmarkProbe(b *testing.B) {
	w := world(b)
	sys, q := benchQuery(b, w)
	// Populate the decoded cache the way a warm server would be.
	if _, err := sys.ReachES(q); err != nil {
		b.Fatal(err)
	}
	var evaluated int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := sys.ReachES(q)
		if err != nil {
			b.Fatal(err)
		}
		evaluated += int64(r.Metrics.Evaluated)
	}
	b.ReportMetric(float64(evaluated)/float64(b.N), "verified/op")
}

// BenchmarkProbeColdCache is the same sweep with the decoded time-list
// cache disabled: every probe decodes blobs through the buffer pool.
func BenchmarkProbeColdCache(b *testing.B) {
	w := world(b)
	sys, err := streach.NewSystemFromData(w.Net, w.DS, streach.IndexConfig{SlotSeconds: 300, TimeListCache: -1})
	if err != nil {
		b.Fatal(err)
	}
	sys.Warm(11*time.Hour, 10*time.Minute)
	loc, err := w.QueryLocation()
	if err != nil {
		b.Fatal(err)
	}
	q := streach.Query{Lat: loc.Lat, Lng: loc.Lng, Start: 11 * time.Hour, Duration: 10 * time.Minute, Prob: 0.2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.ReachES(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReachParallel measures SQMB+TBS throughput under concurrent
// clients: the engine is safe for concurrent Reach calls, and scaling to
// 8 clients should be near-linear now that the Con-Index expansion
// scratch is per-worker and time lists are served from the shared caches.
func BenchmarkReachParallel(b *testing.B) {
	w := world(b)
	sys, q := benchQuery(b, w)
	if _, err := sys.Reach(q); err != nil { // warm all caches once
		b.Fatal(err)
	}
	for _, clients := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("clients-%d", clients), func(b *testing.B) {
			b.ResetTimer()
			var wg sync.WaitGroup
			errs := make(chan error, clients)
			per := b.N / clients
			extra := b.N % clients
			for c := 0; c < clients; c++ {
				n := per
				if c < extra {
					n++
				}
				wg.Add(1)
				go func(n int) {
					defer wg.Done()
					for i := 0; i < n; i++ {
						if _, err := sys.Reach(q); err != nil {
							errs <- err
							return
						}
					}
				}(n)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				b.Fatal(err)
			}
		})
	}
}

// --- Bounding fast path ---

// BenchmarkBounding measures the bounding phase alone on a warm
// Con-Index: a high-L sweep whose cost is the per-round union of
// Near/Far adjacency rows (word-ORs on the bitset rows, element
// inserts on the sparse ones). This is the number the vectorized
// region representation is accountable for.
func BenchmarkBounding(b *testing.B) {
	w := world(b)
	sys, err := w.System(300)
	if err != nil {
		b.Fatal(err)
	}
	const dur = 30 * time.Minute
	sys.Warm(11*time.Hour, dur)
	loc, err := w.QueryLocation()
	if err != nil {
		b.Fatal(err)
	}
	q := core.Query{
		Location: geo.Point{Lat: loc.Lat, Lng: loc.Lng},
		Start:    11 * time.Hour,
		Duration: dur,
		Prob:     0.2,
	}
	eng := sys.Engine()
	var maxRegion int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		segs, err := eng.MaxBoundingRegion(context.Background(), q)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.MinBoundingRegion(context.Background(), q); err != nil {
			b.Fatal(err)
		}
		maxRegion += int64(len(segs))
	}
	b.ReportMetric(float64(maxRegion)/float64(b.N), "maxregion/op")
}

// BenchmarkColdStart measures the first query on a freshly reopened
// system. With the persisted adjacency blob (conindex.adj) the bounding
// phase runs entirely from restored rows; stripping the blob forces the
// pre-PR behaviour where every cold Far/Near lookup runs a travel-time
// Dijkstra at query time. warm-reference is the steady-state number the
// acceptance criterion compares against.
func BenchmarkColdStart(b *testing.B) {
	w := world(b)
	sys, q := benchQuery(b, w)
	if _, err := sys.Reach(q); err != nil {
		b.Fatal(err)
	}
	dir := filepath.Join(b.TempDir(), "saved")
	if err := sys.Save(dir); err != nil {
		b.Fatal(err)
	}
	stripped := filepath.Join(b.TempDir(), "stripped")
	if err := sys.Save(stripped); err != nil {
		b.Fatal(err)
	}
	if err := os.Remove(filepath.Join(stripped, "conindex.adj")); err != nil {
		b.Fatal(err)
	}

	b.Run("warm-reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sys.Reach(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	coldReach := func(b *testing.B, dir string) {
		var materialised int64
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cold, err := streach.OpenSystem(dir, streach.DefaultIndexConfig())
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			r, err := cold.Reach(q)
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			materialised += r.Metrics.ConMaterialised
			cold.Close()
			b.StartTimer()
		}
		b.ReportMetric(float64(materialised)/float64(b.N), "dijkstras/op")
	}
	b.Run("reopen-with-adjacency", func(b *testing.B) { coldReach(b, dir) })
	b.Run("reopen-cold-tables", func(b *testing.B) { coldReach(b, stripped) })
}

// --- Batch-aware shared execution ---

// BenchmarkDoBatch measures the group-and-plan batch scheduler against
// independent execution on two workload shapes:
//
//   - duplicate-heavy: 64 requests over 8 distinct (start, slot, window)
//     groups with varying probabilities — the shape sharing is built for;
//   - all-distinct: 64 requests with 64 distinct start locations — the
//     worst case for the grouping overhead, which must stay negligible.
//
// The shared/independent pairs are the acceptance numbers: ≥2x throughput
// (and visibly fewer allocations) on duplicate-heavy, <5% regression on
// all-distinct.
func BenchmarkDoBatch(b *testing.B) {
	w := world(b)
	sys, err := w.System(300)
	if err != nil {
		b.Fatal(err)
	}
	sys.Warm(11*time.Hour, 20*time.Minute)

	locs, err := w.MultiQueryLocations(16, 11*time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	var dupHeavy, allDistinct []streach.Request
	for i := 0; i < 64; i++ {
		// 8 groups x 8 members; probabilities differ inside each group, so
		// sharing must resolve them from the per-candidate probability map.
		dupHeavy = append(dupHeavy,
			streach.ReachRequest(locs[i%8], 11*time.Hour, 10*time.Minute, 0.1+0.05*float64(i/8)))
		// 16 locations x 4 windows: 64 distinct group keys, nothing shares.
		allDistinct = append(allDistinct,
			streach.ReachRequest(locs[i%16], 11*time.Hour, time.Duration(5+5*(i/16))*time.Minute, 0.2))
	}

	for _, mix := range []struct {
		name string
		reqs []streach.Request
	}{{"duplicate-heavy", dupHeavy}, {"all-distinct", allDistinct}} {
		for _, mode := range []struct {
			name string
			opts []streach.Option
		}{
			{"shared", nil},
			{"independent", []streach.Option{streach.WithBatchSharing(false)}},
		} {
			b.Run(mix.name+"/"+mode.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					for j, r := range sys.DoBatch(context.Background(), mix.reqs, mode.opts...) {
						if r.Err != nil {
							b.Fatalf("request %d: %v", j, r.Err)
						}
					}
				}
				b.ReportMetric(float64(len(mix.reqs)), "queries/op")
			})
		}
	}
}

// BenchmarkShardedReach measures the scatter-gather layer against
// single-engine execution on the same world: the acceptance bar is
// overhead ≤ 10% on one CPU (partition routing + partial-region merge
// are the only extra work) and a speedup once GOMAXPROCS > 1 (shards
// verify concurrently). WithBatchSharing(false) keeps the plan cache out
// of the measurement — every iteration runs the full pipeline.
func BenchmarkShardedReach(b *testing.B) {
	w := world(b)
	sys, err := w.System(300)
	if err != nil {
		b.Fatal(err)
	}
	sys.Warm(11*time.Hour, 20*time.Minute)
	idx := streach.IndexConfig{SlotSeconds: 300, PoolPages: 2048, Shards: 4}
	sharded, err := streach.NewSystemFromData(w.Net, w.DS, idx)
	if err != nil {
		b.Fatal(err)
	}
	sharded.Warm(11*time.Hour, 20*time.Minute)
	loc, err := w.QueryLocation()
	if err != nil {
		b.Fatal(err)
	}
	req := streach.ReachRequest(loc, 11*time.Hour, 10*time.Minute, 0.2)

	for _, sy := range []struct {
		name string
		s    *streach.System
	}{{"unsharded", sys}, {"sharded-4", sharded}} {
		b.Run(sy.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				region, err := sy.s.Do(context.Background(), req, streach.WithBatchSharing(false))
				if err != nil {
					b.Fatal(err)
				}
				if len(region.SegmentIDs) == 0 {
					b.Fatal("empty region")
				}
			}
		})
	}
}

// --- Ablations (DESIGN.md §5) ---

// benchQuery is the standard ablation query against the shared world.
func benchQuery(b *testing.B, w *experiments.World) (*streach.System, streach.Query) {
	b.Helper()
	sys, err := w.System(300)
	if err != nil {
		b.Fatal(err)
	}
	sys.Warm(11*time.Hour, 10*time.Minute)
	loc, err := w.QueryLocation()
	if err != nil {
		b.Fatal(err)
	}
	return sys, streach.Query{Lat: loc.Lat, Lng: loc.Lng, Start: 11 * time.Hour, Duration: 10 * time.Minute, Prob: 0.2}
}

// BenchmarkAblationNoConIndex compares SQMB+TBS (Con-Index pruning)
// against the exhaustive expansion that verifies the full worst-case
// radius.
func BenchmarkAblationNoConIndex(b *testing.B) {
	w := world(b)
	sys, q := benchQuery(b, w)
	b.Run("with-conindex", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sys.Reach(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("without-conindex-ES", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sys.ReachES(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationBufferPool measures per-query physical page reads at
// different buffer pool capacities.
func BenchmarkAblationBufferPool(b *testing.B) {
	w := world(b)
	loc, err := w.QueryLocation()
	if err != nil {
		b.Fatal(err)
	}
	q := streach.Query{Lat: loc.Lat, Lng: loc.Lng, Start: 11 * time.Hour, Duration: 10 * time.Minute, Prob: 0.2}
	for _, pages := range []int{16, 128, 2048} {
		b.Run(fmt.Sprintf("pool-%d", pages), func(b *testing.B) {
			sys, err := streach.NewSystemFromData(w.Net, w.DS, streach.IndexConfig{SlotSeconds: 300, PoolPages: pages})
			if err != nil {
				b.Fatal(err)
			}
			sys.Warm(11*time.Hour, 10*time.Minute)
			var reads int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := sys.Reach(q)
				if err != nil {
					b.Fatal(err)
				}
				reads += r.Metrics.PageReads
			}
			b.ReportMetric(float64(reads)/float64(b.N), "pagereads/op")
		})
	}
}

// BenchmarkAblationVisited compares the EarlyStop trace back with and
// without the visited-set deduplication (thesis §3.3.1's r* example).
func BenchmarkAblationVisited(b *testing.B) {
	w := world(b)
	loc, err := w.QueryLocation()
	if err != nil {
		b.Fatal(err)
	}
	q := streach.Query{Lat: loc.Lat, Lng: loc.Lng, Start: 11 * time.Hour, Duration: 10 * time.Minute, Prob: 0.2}
	for _, tc := range []struct {
		name string
		idx  streach.IndexConfig
	}{
		{"visited-set", streach.IndexConfig{SlotSeconds: 300, EarlyStop: true}},
		{"no-visited-set", streach.IndexConfig{SlotSeconds: 300, EarlyStop: true, NoVisitedSet: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			sys, err := streach.NewSystemFromData(w.Net, w.DS, tc.idx)
			if err != nil {
				b.Fatal(err)
			}
			sys.Warm(11*time.Hour, 10*time.Minute)
			var evaluated int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := sys.Reach(q)
				if err != nil {
					b.Fatal(err)
				}
				evaluated += int64(r.Metrics.Evaluated)
			}
			b.ReportMetric(float64(evaluated)/float64(b.N), "verified/op")
		})
	}
}

// BenchmarkAblationMQMBFilter compares MQMB with and without the overlap
// elimination of Algorithm 3 lines 7-10.
func BenchmarkAblationMQMBFilter(b *testing.B) {
	w := world(b)
	locs, err := w.MultiQueryLocations(3, 11*time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		idx  streach.IndexConfig
	}{
		{"overlap-filter", streach.IndexConfig{SlotSeconds: 300}},
		{"no-overlap-filter", streach.IndexConfig{SlotSeconds: 300, NoOverlapFilter: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			sys, err := streach.NewSystemFromData(w.Net, w.DS, tc.idx)
			if err != nil {
				b.Fatal(err)
			}
			sys.Warm(11*time.Hour, 10*time.Minute)
			var maxRegion int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := sys.ReachMulti(locs, 11*time.Hour, 10*time.Minute, 0.2)
				if err != nil {
					b.Fatal(err)
				}
				maxRegion += int64(r.Metrics.MaxRegion)
			}
			b.ReportMetric(float64(maxRegion)/float64(b.N), "maxregion/op")
		})
	}
}
