package streach

import (
	"context"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"streach/internal/storage"
)

// The crash-point recovery matrix (DESIGN.md §14). Every durability
// boundary one flush-then-compact cycle crosses — WAL seal, carry
// segment create/append/sync, segment retire, page flush and sync, and
// each index file's atomic write/rename/dirsync — is recorded by a
// discovery pass, then hit with a simulated power cut (a panicking
// crash hook) in its own trial on a fresh copy of the directory. After
// every crash the reopened system must answer bit-identically to the
// uncrashed run: the on-disk state is always "some prefix of the cycle
// plus a WAL that replays the rest", never a torn hybrid.

// copyTree clones a saved-system directory, including the wal/
// subdirectory, for an isolated crash trial.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		sp, dp := filepath.Join(src, e.Name()), filepath.Join(dst, e.Name())
		if e.IsDir() {
			if err := os.MkdirAll(dp, 0o755); err != nil {
				t.Fatal(err)
			}
			copyTree(t, sp, dp)
			continue
		}
		in, err := os.Open(sp)
		if err != nil {
			t.Fatal(err)
		}
		out, err := os.Create(dp)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(out, in); err != nil {
			t.Fatal(err)
		}
		in.Close()
		if err := out.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// crashExtraUpdates is the deterministic second wave each trial ingests
// live, so the WAL has an active segment for the compaction to seal.
func crashExtraUpdates(s *System) []IngestUpdate {
	n := s.Network().NumSegments()
	days := s.Dataset().Days
	var out []IngestUpdate
	for i := 0; i < 80; i++ {
		enterMs := int32((10*3600 + 300*(i%12)) * 1000)
		out = append(out, IngestUpdate{
			TaxiID:    int32(2000 + i%10),
			Day:       i % days,
			SegmentID: int32((i * 5) % n),
			EnterMs:   enterMs,
			ExitMs:    enterMs + 30_000,
			SpeedMps:  float32(5 + i%7),
		})
	}
	return out
}

func TestCrashPointRecoveryMatrix(t *testing.T) {
	base := smallSystem(t)
	tmpl := t.TempDir()
	if err := base.Save(tmpl); err != nil {
		t.Fatal(err)
	}
	idx := DefaultIndexConfig()
	idx.PlanCache = -1
	ctx := context.Background()

	// Template: a saved system whose WAL holds an acknowledged first wave
	// of updates (closed without compacting, as a crash would leave it).
	sys, err := OpenSystem(tmpl, idx)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.StartIngest(IngestConfig{FlushInterval: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Ingest(ctx, liveFixtureUpdates(sys)); err != nil {
		t.Fatal(err)
	}
	if err := sys.FlushIngest(ctx); err != nil {
		t.Fatal(err)
	}
	req := ReachRequest(sys.BusiestLocation(10*time.Hour), 10*time.Hour, 10*time.Minute, 0.2)
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	if len(walSegmentFiles(t, tmpl)) == 0 {
		t.Fatal("template has no wal segments")
	}

	// budget is far below the first wave's dirty-key count, so every
	// compaction in the matrix rolls keys forward and writes carry
	// records — the retire-after-carry ordering is on every trial's path.
	const budget = 8

	// runCycle opens a copy of the template, ingests the second wave
	// (hook disarmed: live appends run on writer goroutines, where a
	// panicking hook would kill the process rather than simulate a
	// power cut), arms the hook, and runs one budgeted compaction on the
	// caller goroutine — the only place the armed boundaries execute.
	runCycle := func(t *testing.T, dir string, hook func(string)) (s *System, res CompactResult, compactErr error) {
		t.Helper()
		s, err := OpenSystem(dir, idx)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		if err := s.StartIngest(IngestConfig{FlushInterval: time.Millisecond}); err != nil {
			t.Fatalf("start ingest: %v", err)
		}
		if err := s.Ingest(ctx, crashExtraUpdates(s)); err != nil {
			t.Fatalf("ingest second wave: %v", err)
		}
		if err := s.FlushIngest(ctx); err != nil {
			t.Fatalf("flush second wave: %v", err)
		}
		if hook != nil {
			storage.SetCrashHook(hook)
			defer storage.SetCrashHook(nil)
		}
		res, compactErr = s.CompactIngestN(ctx, budget)
		return s, res, compactErr
	}

	// Discovery pass: record every boundary the cycle crosses, and the
	// uncrashed answer every trial must reproduce.
	var mu sync.Mutex
	var points []string
	seen := make(map[string]bool)
	recDir := t.TempDir()
	copyTree(t, tmpl, recDir)
	rec, res, err := runCycle(t, recDir, func(name string) {
		mu.Lock()
		if !seen[name] {
			seen[name] = true
			points = append(points, name)
		}
		mu.Unlock()
	})
	if err != nil {
		t.Fatalf("discovery compaction: %v", err)
	}
	if res.Remaining == 0 {
		t.Fatalf("budget %d did not bind (%+v); the matrix would skip the carry path", budget, res)
	}
	if res.CarriedObs == 0 {
		t.Fatal("budgeted compaction carried no rolled-over observations")
	}
	want, err := rec.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	rec.Close()
	for _, must := range []string{
		"wal.seal", "wal.create", "wal.append", "wal.sync", "wal.retire",
		"persist.pages.flush", "pages.sync",
		"persist." + fileSTMeta + ".write", "persist." + fileSTMeta + ".rename", "persist." + fileSTMeta + ".dirsync",
		"persist." + fileConIndex + ".rename",
		"persist." + fileConAdj + ".rename",
	} {
		if !seen[must] {
			t.Fatalf("discovery pass missed boundary %s (saw %v)", must, points)
		}
	}

	for _, point := range points {
		point := point
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			copyTree(t, tmpl, dir)
			crashed := false
			func() {
				defer func() {
					if recover() != nil {
						crashed = true
					}
				}()
				_, _, err := runCycle(t, dir, func(name string) {
					if name == point {
						panic("power cut at " + name)
					}
				})
				if err != nil {
					t.Errorf("compaction failed without crashing: %v", err)
				}
			}()
			if !crashed {
				t.Fatalf("crash point %s never fired", point)
			}
			// The crashed System is abandoned, as a real power cut would
			// abandon the process; a fresh open must recover.
			re, err := OpenSystem(dir, idx)
			if err != nil {
				t.Fatalf("reopen after crash at %s: %v", point, err)
			}
			got, err := re.Do(ctx, req)
			if err != nil {
				t.Fatalf("query after crash at %s: %v", point, err)
			}
			regionsEqual(t, "recovered answer ("+point+")", got, want)

			// Recovery converges: a full durable compaction from the
			// crashed state drains the WAL and still answers identically
			// after a cold reopen.
			if err := re.StartIngest(IngestConfig{}); err != nil {
				t.Fatal(err)
			}
			fres, err := re.CompactIngest(ctx)
			if err != nil {
				t.Fatalf("full compaction after crash at %s: %v", point, err)
			}
			if !fres.Durable || fres.Remaining != 0 {
				t.Fatalf("post-crash compaction not durable/complete: %+v", fres)
			}
			if err := re.Close(); err != nil {
				t.Fatal(err)
			}
			if left := walSegmentFiles(t, dir); len(left) != 0 {
				t.Fatalf("wal segments survived a full durable compaction after crash at %s: %v", point, left)
			}
			cold, err := OpenSystem(dir, idx)
			if err != nil {
				t.Fatalf("cold reopen after recovery from %s: %v", point, err)
			}
			got2, err := cold.Do(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			regionsEqual(t, "post-recovery cold answer ("+point+")", got2, want)
			cold.Close()
		})
	}
}
