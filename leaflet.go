package streach

import (
	"fmt"
	"html/template"
	"strings"
)

// LeafletHTML renders the region as a self-contained HTML page with a
// Leaflet map, matching how the thesis visualises Prob-reachable regions
// (its Figs 4.2/4.4/4.6/4.9 are Leaflet screenshots). Highways render
// thicker and darker than local roads. The page loads Leaflet from the
// public CDN; the region data itself is inlined.
func (r *Region) LeafletHTML(title string) (string, error) {
	gj, err := r.GeoJSON()
	if err != nil {
		return "", err
	}
	minLat, minLng, maxLat, maxLng, ok := r.Bounds()
	if !ok {
		return "", fmt.Errorf("streach: cannot render an empty region")
	}
	var b strings.Builder
	err = leafletTemplate.Execute(&b, map[string]interface{}{
		"Title":   title,
		"GeoJSON": template.JS(gj),
		"MinLat":  minLat, "MinLng": minLng,
		"MaxLat": maxLat, "MaxLng": maxLng,
		"RoadKm":   fmt.Sprintf("%.1f", r.RoadKm),
		"Segments": len(r.SegmentIDs),
	})
	if err != nil {
		return "", fmt.Errorf("streach: render leaflet page: %w", err)
	}
	return b.String(), nil
}

var leafletTemplate = template.Must(template.New("leaflet").Parse(`<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<title>{{.Title}}</title>
<link rel="stylesheet" href="https://unpkg.com/leaflet@1.9.4/dist/leaflet.css">
<script src="https://unpkg.com/leaflet@1.9.4/dist/leaflet.js"></script>
<style>
  html, body, #map { height: 100%; margin: 0; }
  .legend {
    position: absolute; bottom: 16px; left: 16px; z-index: 1000;
    background: rgba(255,255,255,0.9); padding: 8px 12px; border-radius: 6px;
    font: 13px/1.4 sans-serif; box-shadow: 0 1px 4px rgba(0,0,0,0.3);
  }
</style>
</head>
<body>
<div id="map"></div>
<div class="legend">
  <b>{{.Title}}</b><br>
  {{.Segments}} reachable segments, {{.RoadKm}} km of road
</div>
<script>
var region = {{.GeoJSON}};
var map = L.map('map');
L.tileLayer('https://tile.openstreetmap.org/{z}/{x}/{y}.png', {
  maxZoom: 19, attribution: '&copy; OpenStreetMap contributors'
}).addTo(map);
function styleOf(f) {
  var c = f.properties["class"];
  if (c === "highway")  return {color: "#c0392b", weight: 5, opacity: 0.85};
  if (c === "primary")  return {color: "#2980b9", weight: 4, opacity: 0.8};
  return {color: "#27ae60", weight: 3, opacity: 0.75};
}
L.geoJSON(region, {style: styleOf}).addTo(map);
map.fitBounds([[{{.MinLat}}, {{.MinLng}}], [{{.MaxLat}}, {{.MaxLng}}]], {padding: [24, 24]});
</script>
</body>
</html>
`))
