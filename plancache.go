package streach

import (
	"container/list"
	"context"
	"sync"

	"streach/internal/conindex"
	"streach/internal/core"
)

// queryPlan is the shared-plan surface the facade executes against —
// satisfied by both core.SharedPlan (single engine) and shard.Plan
// (scatter-gather cluster) — so Do, DoBatch groups, and the cross-batch
// cache treat sharded and unsharded plans identically.
type queryPlan interface {
	ResultAt(ctx context.Context, prob float64) (*core.Result, error)
	RowStats() conindex.PinStats
	Rebase()
	Close()
}

// planCache is the cross-batch shared-plan LRU: a plan built for one
// batch group (or one Do call) parks here keyed by its group key, and
// steady-state duplicate traffic — the same query shape arriving batch
// after batch — skips bounding, probing, and verification entirely,
// resolving new thresholds from the cached per-candidate probabilities.
//
// Ownership is strict take/put: take removes the entry, so exactly one
// caller uses a plan at a time (SharedPlan is single-goroutine); put
// returns it, evicting the least-recently-used plan beyond capacity.
// Concurrent same-key callers miss and build their own plan — the loser
// of the race at put replaces the incumbent, which is closed. clear
// (index reload, Close, re-sharding) closes everything.
type planCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recent; values are *planEntry
	entries map[string]*list.Element
}

type planEntry struct {
	key  string
	plan queryPlan
}

// newPlanCache sizes the cache; cap <= 0 disables it (returns nil, and
// every method is nil-safe).
func newPlanCache(cap int) *planCache {
	if cap <= 0 {
		return nil
	}
	return &planCache{cap: cap, ll: list.New(), entries: map[string]*list.Element{}}
}

// take removes and returns the cached plan for key, if any.
func (c *planCache) take(key string) (queryPlan, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.ll.Remove(el)
	delete(c.entries, key)
	return el.Value.(*planEntry).plan, true
}

// put parks a plan under key, closing any incumbent and evicting beyond
// capacity. The caller must not use the plan after put.
func (c *planCache) put(key string, plan queryPlan) {
	if c == nil {
		plan.Close()
		return
	}
	var closing []queryPlan
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		// A concurrent builder raced us; keep the newest, drop the older.
		closing = append(closing, el.Value.(*planEntry).plan)
		c.ll.Remove(el)
		delete(c.entries, key)
	}
	c.entries[key] = c.ll.PushFront(&planEntry{key: key, plan: plan})
	for c.ll.Len() > c.cap {
		el := c.ll.Back()
		ent := el.Value.(*planEntry)
		closing = append(closing, ent.plan)
		c.ll.Remove(el)
		delete(c.entries, ent.key)
	}
	c.mu.Unlock()
	for _, p := range closing {
		p.Close()
	}
}

// clear closes every cached plan — the invalidation hook for Close and
// re-sharding.
func (c *planCache) clear() {
	if c == nil {
		return
	}
	c.mu.Lock()
	var closing []queryPlan
	for el := c.ll.Front(); el != nil; el = el.Next() {
		closing = append(closing, el.Value.(*planEntry).plan)
	}
	c.ll.Init()
	c.entries = map[string]*list.Element{}
	c.mu.Unlock()
	for _, p := range closing {
		p.Close()
	}
}

// grow raises the capacity to at least n; it never shrinks. Warming N
// shapes into a smaller LRU would evict its own work, so
// EnableWarmPlanning grows the cache to hold what it warms.
func (c *planCache) grow(n int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if n > c.cap {
		c.cap = n
	}
	c.mu.Unlock()
}

// len reports how many plans are parked (tests).
func (c *planCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
