package streach

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

// cancelAfter reports Canceled once Err has been polled n times: a
// deterministic "cancel mid-query" with no sleeps or races.
type cancelAfter struct {
	context.Context
	remaining atomic.Int64
}

func cancelAfterN(n int) *cancelAfter {
	c := &cancelAfter{Context: context.Background()}
	c.remaining.Store(int64(n))
	return c
}

func (c *cancelAfter) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

func testRequest(s *System) Request {
	q := testQuery(s)
	return q.request(KindReach)
}

// TestDoMatchesDeprecatedWrappers: the old facade methods are now thin
// wrappers over Do; both spellings must agree exactly, kind by kind.
func TestDoMatchesDeprecatedWrappers(t *testing.T) {
	s := smallSystem(t)
	ctx := context.Background()
	q := testQuery(s)
	loc := Location{Lat: q.Lat, Lng: q.Lng}
	locs := []Location{loc, {Lat: loc.Lat + 0.01, Lng: loc.Lng + 0.01}}

	type pair struct {
		name   string
		viaDo  func() (*Region, error)
		viaOld func() (*Region, error)
	}
	pairs := []pair{
		{
			"reach",
			func() (*Region, error) { return s.Do(ctx, q.request(KindReach)) },
			func() (*Region, error) { return s.Reach(q) },
		},
		{
			"reach-exhaustive",
			func() (*Region, error) { return s.Do(ctx, q.request(KindReach), WithAlgorithm(AlgoExhaustive)) },
			func() (*Region, error) { return s.ReachES(q) },
		},
		{
			"reverse",
			func() (*Region, error) { return s.Do(ctx, q.request(KindReverse)) },
			func() (*Region, error) { return s.ReverseReach(q) },
		},
		{
			"multi",
			func() (*Region, error) { return s.Do(ctx, MultiRequest(locs, q.Start, q.Duration, q.Prob)) },
			func() (*Region, error) { return s.ReachMulti(locs, q.Start, q.Duration, q.Prob) },
		},
		{
			"multi-sequential",
			func() (*Region, error) {
				return s.Do(ctx, MultiRequest(locs, q.Start, q.Duration, q.Prob), WithAlgorithm(AlgoSequential))
			},
			func() (*Region, error) { return s.ReachMultiSequential(locs, q.Start, q.Duration, q.Prob) },
		},
	}
	for _, p := range pairs {
		a, err := p.viaDo()
		if err != nil {
			t.Fatalf("%s via Do: %v", p.name, err)
		}
		b, err := p.viaOld()
		if err != nil {
			t.Fatalf("%s via wrapper: %v", p.name, err)
		}
		if !reflect.DeepEqual(a.SegmentIDs, b.SegmentIDs) {
			t.Fatalf("%s: Do and wrapper disagree (%d vs %d segments)",
				p.name, len(a.SegmentIDs), len(b.SegmentIDs))
		}
	}
}

func TestDoRoute(t *testing.T) {
	s := smallSystem(t)
	q := testQuery(s)
	from := Location{Lat: q.Lat, Lng: q.Lng}
	to := Location{Lat: q.Lat + 0.02, Lng: q.Lng + 0.02}

	region, err := s.Do(context.Background(), RouteRequest(from, to, 8*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if region.Route == nil || len(region.Route.SegmentIDs) == 0 {
		t.Fatal("route answer has no journey")
	}
	if len(region.SegmentIDs) != len(region.Route.SegmentIDs) {
		t.Fatal("region SegmentIDs should mirror the route path")
	}
	if region.Route.TravelTime <= 0 {
		t.Fatalf("travel time = %v", region.Route.TravelTime)
	}
	ff, err := s.Do(context.Background(), RouteRequest(from, to, 0), WithAlgorithm(AlgoFreeFlow))
	if err != nil {
		t.Fatal(err)
	}
	if ff.Route == nil || len(ff.Route.SegmentIDs) == 0 {
		t.Fatal("free-flow route answer has no journey")
	}
}

func TestDoRejectsBadRequests(t *testing.T) {
	s := smallSystem(t)
	ctx := context.Background()
	q := testQuery(s)
	for name, req := range map[string]struct {
		r    Request
		opts []Option
	}{
		"no-location":        {r: Request{Kind: KindReach, Start: q.Start, Duration: q.Duration, Prob: q.Prob}},
		"route-one-location": {r: Request{Kind: KindRoute, Locations: []Location{{q.Lat, q.Lng}}}},
		"multi-none":         {r: Request{Kind: KindMulti, Start: q.Start, Duration: q.Duration, Prob: q.Prob}},
		"bad-kind":           {r: Request{Kind: Kind(42), Locations: []Location{{q.Lat, q.Lng}}}},
		"route-exhaustive":   {r: RouteRequest(Location{q.Lat, q.Lng}, Location{q.Lat, q.Lng}, 0), opts: []Option{WithAlgorithm(AlgoExhaustive)}},
		"reach-sequential":   {r: q.request(KindReach), opts: []Option{WithAlgorithm(AlgoSequential)}},
		"multi-exhaustive":   {r: MultiRequest([]Location{{q.Lat, q.Lng}}, q.Start, q.Duration, q.Prob), opts: []Option{WithAlgorithm(AlgoExhaustive)}},
	} {
		if _, err := s.Do(ctx, req.r, req.opts...); err == nil {
			t.Errorf("%s: Do accepted an invalid request", name)
		}
	}
}

// TestPerQueryOptionsOverrideDefaults: options must override the
// build-time engine configuration for one call only.
func TestPerQueryOptionsOverrideDefaults(t *testing.T) {
	s := smallSystem(t)
	ctx := context.Background()
	req := testRequest(s)

	def, err := s.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}

	// WithVerifyWorkers(1) forces the serial verification path; the
	// answer must be identical to the default parallel pool's.
	serial, err := s.Do(ctx, req, WithVerifyWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(def.SegmentIDs, serial.SegmentIDs) {
		t.Fatal("WithVerifyWorkers(1) changed the answer")
	}

	// WithVerifyAll probes the otherwise-unverified minimum region, so it
	// must evaluate strictly more segments — observable proof the
	// build-time default was overridden for this call.
	all, err := s.Do(ctx, req, WithVerifyAll(true))
	if err != nil {
		t.Fatal(err)
	}
	if def.Metrics.MinRegion > 0 && all.Metrics.Evaluated <= def.Metrics.Evaluated {
		t.Fatalf("WithVerifyAll evaluated %d segments, default %d",
			all.Metrics.Evaluated, def.Metrics.Evaluated)
	}

	// WithProb replaces the request's threshold: a near-impossible
	// probability must shrink the region.
	strict, err := s.Do(ctx, req, WithProb(0.99))
	if err != nil {
		t.Fatal(err)
	}
	if len(strict.SegmentIDs) >= len(def.SegmentIDs) {
		t.Fatalf("WithProb(0.99) kept %d of %d segments",
			len(strict.SegmentIDs), len(def.SegmentIDs))
	}

	// The overrides must not stick to the system.
	again, err := s.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(def.SegmentIDs, again.SegmentIDs) {
		t.Fatal("per-query options leaked into later calls")
	}
}

// TestDoCancellation: a cancelled context aborts reach queries promptly,
// both pre-cancelled and mid-query (at a deterministic checkpoint).
func TestDoCancellation(t *testing.T) {
	s := smallSystem(t)
	req := testRequest(s)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Do(ctx, req); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Do = %v, want context.Canceled", err)
	}

	// The budgets must stay below the total checkpoint polls of a fully
	// warm query (bounding rounds + one poll per verified candidate, well
	// over a hundred on this world) so the cancel always lands mid-query.
	for _, n := range []int{1, 10, 50} {
		if _, err := s.Do(cancelAfterN(n), req); !errors.Is(err, context.Canceled) {
			t.Fatalf("mid-query cancel (n=%d) = %v, want context.Canceled", n, err)
		}
	}
}

// TestDoDeadlineBudget: WithDeadlineBudget must impose a per-call
// deadline even under a background parent context.
func TestDoDeadlineBudget(t *testing.T) {
	s := smallSystem(t)
	req := testRequest(s)
	if _, err := s.Do(context.Background(), req, WithDeadlineBudget(time.Nanosecond)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("1ns budget = %v, want context.DeadlineExceeded", err)
	}
}

// TestDoBatchParallelMatchesSerial runs a mixed batch under -race: the
// bounded pool must return, positionally, exactly what one-at-a-time Do
// returns.
func TestDoBatchParallelMatchesSerial(t *testing.T) {
	s := smallSystem(t)
	ctx := context.Background()
	q := testQuery(s)
	loc := Location{Lat: q.Lat, Lng: q.Lng}
	reqs := []Request{
		q.request(KindReach),
		q.request(KindReverse),
		MultiRequest([]Location{loc, {Lat: loc.Lat + 0.01, Lng: loc.Lng}}, q.Start, q.Duration, q.Prob),
		RouteRequest(loc, Location{Lat: loc.Lat + 0.02, Lng: loc.Lng + 0.02}, q.Start),
		{Kind: KindReach}, // invalid: no location — errors positionally
		q.request(KindReach),
	}

	batch := s.DoBatch(ctx, reqs, WithBatchWorkers(4))
	if len(batch) != len(reqs) {
		t.Fatalf("batch returned %d results for %d requests", len(batch), len(reqs))
	}
	for i, req := range reqs {
		want, wantErr := s.Do(ctx, req)
		got := batch[i]
		if (wantErr == nil) != (got.Err == nil) {
			t.Fatalf("request %d: batch err %v, serial err %v", i, got.Err, wantErr)
		}
		if wantErr != nil {
			continue
		}
		if !reflect.DeepEqual(want.SegmentIDs, got.Region.SegmentIDs) {
			t.Fatalf("request %d: batch and serial answers differ", i)
		}
	}
}

// TestDoBatchSharingMatchesIndependent: a duplicate-heavy batch — same
// (kind, location, start, window), different probabilities — must return,
// for every algorithm, exactly what independent Do calls return, and the
// same again with sharing disabled. Runs under -race in CI, so it also
// proves the shared plans race-free across the batch worker pool.
func TestDoBatchSharingMatchesIndependent(t *testing.T) {
	s := smallSystem(t)
	ctx := context.Background()
	q := testQuery(s)
	loc := Location{Lat: q.Lat, Lng: q.Lng}
	loc2 := Location{Lat: q.Lat + 0.01, Lng: q.Lng + 0.01}
	probs := []float64{0.1, 0.2, 0.35, 0.5}

	build := func(k Kind) []Request {
		var reqs []Request
		for _, p := range probs {
			r := Request{Kind: k, Locations: []Location{loc}, Start: q.Start, Duration: q.Duration, Prob: p}
			if k == KindMulti {
				r.Locations = []Location{loc, loc2}
			}
			reqs = append(reqs, r)
		}
		// A second copy of every request: identical probs must share too.
		return append(reqs, reqs...)
	}

	cases := []struct {
		name string
		reqs []Request
		opts []Option
	}{
		{"reach-bounded", build(KindReach), nil},
		{"reach-exhaustive", build(KindReach), []Option{WithAlgorithm(AlgoExhaustive)}},
		{"reverse", build(KindReverse), nil},
		{"reverse-exhaustive", build(KindReverse), []Option{WithAlgorithm(AlgoExhaustive)}},
		{"multi-mqmb", build(KindMulti), nil},
		{"multi-sequential", build(KindMulti), []Option{WithAlgorithm(AlgoSequential)}},
	}
	groups0 := s.SharingStats().BatchGroups
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			shared := s.DoBatch(ctx, tc.reqs, tc.opts...)
			unshared := s.DoBatch(ctx, tc.reqs, append([]Option{WithBatchSharing(false)}, tc.opts...)...)
			for i, req := range tc.reqs {
				want, err := s.Do(ctx, req, tc.opts...)
				if err != nil {
					t.Fatalf("request %d independent: %v", i, err)
				}
				for which, got := range map[string]BatchResult{"shared": shared[i], "unshared": unshared[i]} {
					if got.Err != nil {
						t.Fatalf("request %d %s: %v", i, which, got.Err)
					}
					if !reflect.DeepEqual(want.SegmentIDs, got.Region.SegmentIDs) {
						t.Fatalf("request %d %s: segments differ from independent Do", i, which)
					}
					if !reflect.DeepEqual(want.Probabilities, got.Region.Probabilities) {
						t.Fatalf("request %d %s: probabilities differ from independent Do", i, which)
					}
				}
			}
		})
	}
	if got := s.SharingStats(); got.BatchGroups <= groups0 || got.QueriesCoalesced == 0 {
		t.Fatalf("sharing counters did not advance: %+v", got)
	}
}

// TestDoBatchRouteGroupSharing: identical route requests share one
// journey computation; every member owns an equal, independent copy.
func TestDoBatchRouteGroupSharing(t *testing.T) {
	s := smallSystem(t)
	q := testQuery(s)
	from := Location{Lat: q.Lat, Lng: q.Lng}
	to := Location{Lat: q.Lat + 0.02, Lng: q.Lng + 0.02}
	req := RouteRequest(from, to, q.Start)
	reqs := []Request{req, req, req}

	want, err := s.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	batch := s.DoBatch(context.Background(), reqs)
	for i, r := range batch {
		if r.Err != nil {
			t.Fatalf("route %d: %v", i, r.Err)
		}
		if !reflect.DeepEqual(want.SegmentIDs, r.Region.SegmentIDs) {
			t.Fatalf("route %d differs from independent Do", i)
		}
	}
	// Clones must be independent slices, not views of the same array.
	if &batch[0].Region.SegmentIDs[0] == &batch[1].Region.SegmentIDs[0] {
		t.Fatal("route group members share one SegmentIDs array")
	}
}

// TestDoBatchBudgetedRequestsStayIndependent: WithDeadlineBudget is a
// per-query guarantee, so budgeted requests bypass grouping — each gets
// its own budget exactly as independent execution would.
func TestDoBatchBudgetedRequestsStayIndependent(t *testing.T) {
	s := smallSystem(t)
	req := testRequest(s)
	reqs := []Request{req, req}
	before := s.SharingStats().BatchGroups
	for i, r := range s.DoBatch(context.Background(), reqs, WithDeadlineBudget(time.Minute)) {
		if r.Err != nil {
			t.Fatalf("budgeted request %d: %v", i, r.Err)
		}
	}
	if got := s.SharingStats().BatchGroups; got != before {
		t.Fatalf("budgeted duplicates formed a shared group (%d -> %d)", before, got)
	}
}

// TestDoBatchGroupCancellation: a cancellation landing inside a group's
// shared plan reclaims the whole group — every member reports
// context.Canceled, none hangs with a partial answer.
func TestDoBatchGroupCancellation(t *testing.T) {
	s := smallSystem(t)
	q := testQuery(s)
	reqs := make([]Request, 8)
	for i := range reqs {
		reqs[i] = q.request(KindReach)
		reqs[i].Prob = 0.1 + 0.05*float64(i) // one group, eight thresholds
	}
	// Three polls land the cancel inside the plan's bounding phase (the
	// batch loop checks once, then each bounding round checks).
	for i, r := range s.DoBatch(cancelAfterN(3), reqs, WithBatchWorkers(1)) {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("group member %d after mid-plan cancel = %v, want context.Canceled", i, r.Err)
		}
	}
}

// TestDoBatchCancellation: a cancelled batch context marks every
// unfinished request with context.Canceled.
func TestDoBatchCancellation(t *testing.T) {
	s := smallSystem(t)
	req := testRequest(s)
	reqs := []Request{req, req, req, req}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i, r := range s.DoBatch(ctx, reqs, WithBatchWorkers(2)) {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("result %d after pre-cancel = %v, want context.Canceled", i, r.Err)
		}
	}

	// Mid-batch: the shared Err budget lets a prefix of checkpoints pass,
	// then every later request must fail with Canceled — none may hang or
	// return a different error.
	for i, r := range s.DoBatch(cancelAfterN(10), reqs, WithBatchWorkers(2)) {
		if r.Err != nil && !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("result %d after mid-batch cancel = %v", i, r.Err)
		}
	}
}

// TestWarmEndOfDaySlotCap: warming a window that crosses midnight must
// stop at the last slot of the day — exactly the slots queries can touch
// — rather than precomputing wrapped out-of-range slots.
func TestWarmEndOfDaySlotCap(t *testing.T) {
	// A private small world: the shared test system's Con-Index cache
	// would pollute the row counts.
	sys, err := NewSystem(CityConfig{
		OriginLat: 22.50, OriginLng: 114.00,
		Rows: 5, Cols: 5,
		SpacingMeters: 1000,
		LocalFraction: 0.2,
		Seed:          71,
	}, FleetConfig{Taxis: 20, Days: 3, Seed: 72}, DefaultIndexConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	con := sys.Engine().ConIndex()
	slotSec := con.SlotSeconds()
	nSeg := sys.Network().NumSegments()

	// 23:40 + 2h crosses midnight: only the slots up to NumSlots-1 may
	// be warmed (here 23:40..23:55 → 4 slots).
	start := 23*time.Hour + 40*time.Minute
	if err := sys.WarmCtx(context.Background(), start, 2*time.Hour); err != nil {
		t.Fatal(err)
	}
	lo := int(start.Seconds()) / slotSec
	wantSlots := con.NumSlots() - lo
	if got, want := con.CachedLists(), 2*wantSlots*nSeg; got != want {
		t.Fatalf("end-of-day warm cached %d rows, want %d (%d slots x %d segments x near+far)",
			got, want, wantSlots, nSeg)
	}

	// A start past the last slot start must warm nothing new; so must a
	// start at exactly midnight-adjacent hi < lo edge.
	before := con.CachedLists()
	sys.Warm(24*time.Hour-time.Nanosecond, time.Hour)
	if got := con.CachedLists(); got != before {
		// The last slot was already warm from the first call; nothing new
		// may appear.
		t.Fatalf("out-of-range warm added rows: %d -> %d", before, got)
	}
}

// TestWarmCancellation: WarmCtx must stop early under a cancelled
// context (reach-side of the satellite requirement; the conindex side is
// tested in internal/conindex).
func TestWarmCancellation(t *testing.T) {
	s := smallSystem(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// An unwarmed early-morning window: no other test touches 2h.
	if err := s.WarmCtx(ctx, 2*time.Hour, 10*time.Minute); !errors.Is(err, context.Canceled) {
		t.Fatalf("WarmCtx with cancelled ctx = %v, want context.Canceled", err)
	}
}
