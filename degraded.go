package streach

import (
	"fmt"
	"time"

	"streach/internal/shard"
)

// Degraded describes a partial-results answer: a sharded query ran with
// WithPartialResults and one or more shards failed, so the region is
// the merge of the surviving shards' partials only.
type Degraded struct {
	// MissingShards lists the shards that did not contribute, ascending.
	MissingShards []int
	// Coverage is the fraction of road segments owned by the shards
	// that did contribute, in [0, 1].
	Coverage float64
	// Causes is parallel to MissingShards: why each shard is missing.
	Causes []error
}

// newDegraded converts the shard layer's loss record to the facade
// form.
func newDegraded(d *shard.Degraded) *Degraded {
	out := &Degraded{
		MissingShards: append([]int(nil), d.MissingShards...),
		Coverage:      d.Coverage,
		Causes:        make([]error, len(d.Failures)),
	}
	for i, se := range d.Failures {
		out.Causes[i] = se
	}
	return out
}

// cloneDegraded deep-copies the loss record for cloneRegion.
func cloneDegraded(d *Degraded) *Degraded {
	if d == nil {
		return nil
	}
	return &Degraded{
		MissingShards: append([]int(nil), d.MissingShards...),
		Coverage:      d.Coverage,
		Causes:        append([]error(nil), d.Causes...),
	}
}

// WithPartialResults makes a sharded query degrade instead of failing:
// when one or more shards fail (error, panic, injected fault, or
// per-shard budget expiry), the surviving shards' partial regions are
// merged into the answer and Region.Degraded reports the loss. Without
// it (the default), any shard failure fails the query with a typed
// ShardFailure (or, for a budget expiry, Timeout) error. No effect on
// unsharded systems. Partial-results queries never share or cache
// plans: a degraded plan is only valid for the failure it observed.
func WithPartialResults(on bool) Option {
	return func(o *queryOptions) { o.partial = on }
}

// WithShardBudget bounds each shard's scatter/gather work for this
// query: a shard that has not finished inside d is treated as failed —
// fail-fast with a typed Timeout error by default, or skipped and
// reported via Region.Degraded under WithPartialResults. This is the
// bound that turns a hung shard into a bounded-latency failure. Zero
// removes the bound; it overrides IndexConfig.ShardBudget for this
// call. No effect on unsharded systems.
func WithShardBudget(d time.Duration) Option {
	return func(o *queryOptions) { o.shardBudget, o.shardBudgetSet = d, true }
}

// ShardFault selects an injected shard failure shape (chaos testing).
type ShardFault int

const (
	// ShardFaultNone clears injection for the shard.
	ShardFaultNone ShardFault = iota
	// ShardFaultError makes the shard fail with an error.
	ShardFaultError
	// ShardFaultPanic makes the shard panic (recovered into an error).
	ShardFaultPanic
	// ShardFaultHang makes the shard block until its context is done.
	ShardFaultHang
)

// String names the fault (chaos-flag keyword).
func (f ShardFault) String() string { return f.kind().String() }

func (f ShardFault) kind() shard.FaultKind {
	switch f {
	case ShardFaultError:
		return shard.FaultError
	case ShardFaultPanic:
		return shard.FaultPanic
	case ShardFaultHang:
		return shard.FaultHang
	}
	return shard.FaultNone
}

// ParseShardFault parses a chaos-flag keyword ("none", "error",
// "panic", "hang").
func ParseShardFault(s string) (ShardFault, error) {
	k, err := shard.ParseFaultKind(s)
	if err != nil {
		return ShardFaultNone, fmt.Errorf("streach: %w", err)
	}
	switch k {
	case shard.FaultError:
		return ShardFaultError, nil
	case shard.FaultPanic:
		return ShardFaultPanic, nil
	case shard.FaultHang:
		return ShardFaultHang, nil
	}
	return ShardFaultNone, nil
}

// InjectShardFault injects (or, with ShardFaultNone, clears) a fault on
// shard sh of a sharded system: every subsequent query touching the
// shard observes the failure shape. The development hook behind the
// `serve -chaos` flag and the chaos tests; it has no effect on results
// until queries actually route work to the shard.
func (s *System) InjectShardFault(sh int, f ShardFault) error {
	c := s.cluster.Load()
	if c == nil {
		return errInvalid("inject", "streach: InjectShardFault on an unsharded system")
	}
	if err := c.InjectFault(sh, f.kind()); err != nil {
		return errInvalid("inject", "streach: %v", err)
	}
	return nil
}

// ShardHealth is one shard's failure record.
type ShardHealth struct {
	// Shard is the shard ordinal.
	Shard int
	// Failures counts scatter/gather failures attributed to the shard.
	Failures int64
	// LastError is the most recent failure's message ("" when none).
	LastError string
	// Fault names the currently injected fault ("none" when healthy).
	Fault string
	// Breaker names the shard's circuit-breaker state ("closed",
	// "half_open", "open"; "closed" when breakers are disabled).
	Breaker string
}

// Degraded reports whether the shard is currently failing: a fault is
// injected or failures have been recorded.
func (h ShardHealth) Degraded() bool { return h.Fault != "none" || h.Failures > 0 }

// ShardHealth snapshots every shard's failure record; nil when the
// system is unsharded.
func (s *System) ShardHealth() []ShardHealth {
	c := s.cluster.Load()
	if c == nil {
		return nil
	}
	hs := c.Health()
	out := make([]ShardHealth, len(hs))
	for i, h := range hs {
		out[i] = ShardHealth{
			Shard:     h.Shard,
			Failures:  h.Failures,
			LastError: h.LastError,
			Fault:     h.Fault.String(),
			Breaker:   h.Breaker.String(),
		}
	}
	return out
}
