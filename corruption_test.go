package streach

import (
	"bytes"
	"io"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestCorruptionFuzzReopen pins the checksummed-persistence acceptance
// criterion: a single flipped bit anywhere in a persisted index file is
// detected on reopen and repaired by a cold rebuild (or, for the
// adjacency warm cache, by dropping the blob) — the open never panics,
// never fails, and the reopened system answers bit-identically to the
// uncorrupted one.
func TestCorruptionFuzzReopen(t *testing.T) {
	s := smallSystem(t)
	want, err := s.Reach(testQuery(s))
	if err != nil {
		t.Fatal(err)
	}
	src := t.TempDir()
	if err := s.Save(src); err != nil {
		t.Fatal(err)
	}

	const trials = 4
	rng := rand.New(rand.NewSource(99))
	for _, name := range []string{fileSTMeta, filePages, fileConIndex, fileConAdj} {
		t.Run(name, func(t *testing.T) {
			for trial := 0; trial < trials; trial++ {
				dir := t.TempDir()
				copyDir(t, src, dir)
				path := filepath.Join(dir, name)
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				bit := rng.Intn(len(data) * 8)
				data[bit/8] ^= 1 << (bit % 8)
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatal(err)
				}

				var logBuf bytes.Buffer
				log.SetOutput(&logBuf)
				idx := DefaultIndexConfig()
				idx.PlanCache = -1
				sys, err := OpenSystem(dir, idx)
				log.SetOutput(os.Stderr)
				if err != nil {
					t.Fatalf("bit %d: reopen failed instead of repairing: %v", bit, err)
				}
				if name == fileConAdj {
					// The warm cache is dropped, not rebuilt.
					if strings.Contains(logBuf.String(), "cold rebuild") {
						t.Fatalf("bit %d: adjacency flip triggered an index rebuild:\n%s", bit, logBuf.String())
					}
					if !strings.Contains(logBuf.String(), "re-materialise lazily") {
						t.Fatalf("bit %d: adjacency corruption went undetected", bit)
					}
				} else if !strings.Contains(logBuf.String(), "cold rebuild") {
					t.Fatalf("bit %d: corruption in %s went undetected (no cold rebuild logged):\n%s",
						bit, name, logBuf.String())
				}
				got, err := sys.Reach(testQuery(sys))
				if err != nil {
					t.Fatalf("bit %d: query on repaired system: %v", bit, err)
				}
				if !reflect.DeepEqual(got.SegmentIDs, want.SegmentIDs) ||
					!reflect.DeepEqual(got.Probabilities, want.Probabilities) {
					t.Fatalf("bit %d in %s: repaired system answers differently (%d segments, want %d)",
						bit, name, len(got.SegmentIDs), len(want.SegmentIDs))
				}
			}
		})
	}
}

// TestCorruptionRepairIsDurable: after a cold rebuild the repaired files
// are re-saved, so the next open of the same dir is warm (no rebuild).
func TestCorruptionRepairIsDurable(t *testing.T) {
	s := smallSystem(t)
	dir := t.TempDir()
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, fileSTMeta)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	idx := DefaultIndexConfig()
	idx.PlanCache = -1

	var logBuf bytes.Buffer
	log.SetOutput(&logBuf)
	_, err = OpenSystem(dir, idx)
	log.SetOutput(os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(logBuf.String(), "cold rebuild") {
		t.Fatalf("corrupted meta not rebuilt:\n%s", logBuf.String())
	}

	logBuf.Reset()
	log.SetOutput(&logBuf)
	_, err = OpenSystem(dir, idx)
	log.SetOutput(os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(logBuf.String(), "cold rebuild") {
		t.Fatalf("second open still rebuilds — repair was not persisted:\n%s", logBuf.String())
	}
}

func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		in, err := os.Open(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out, err := os.Create(filepath.Join(dst, e.Name()))
		if err != nil {
			in.Close()
			t.Fatal(err)
		}
		if _, err := io.Copy(out, in); err != nil {
			t.Fatal(err)
		}
		in.Close()
		if err := out.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
