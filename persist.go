package streach

import (
	"fmt"
	"os"
	"path/filepath"

	"streach/internal/conindex"
	"streach/internal/roadnet"
	"streach/internal/stindex"
	"streach/internal/storage"
	"streach/internal/traj"
)

// On-disk layout of a saved system:
//
//	dir/network.bin    road network (roadnet codec)
//	dir/dataset.bin    matched trajectories (traj codec)
//	dir/pages.db       ST-Index time-list pages
//	dir/stindex.meta   ST-Index handle table and metadata
//	dir/conindex.bin   Con-Index speed statistics
//	dir/conindex.adj   Con-Index materialised Near/Far adjacency rows
//	                   (optional warm cache, "CADJ" blob: adaptive
//	                   sparse-list/bitset rows for all four tables; see
//	                   conindex.SaveAdjacency). Save dirs written before
//	                   the adjacency blob existed simply lack the file
//	                   and reopen with cold, lazily-materialised tables.
const (
	fileNetwork  = "network.bin"
	fileDataset  = "dataset.bin"
	filePages    = "pages.db"
	fileSTMeta   = "stindex.meta"
	fileConIndex = "conindex.bin"
	fileConAdj   = "conindex.adj"
)

// Save persists the whole system into dir (created if absent): network,
// trajectories, and both indexes. A saved system reopens with OpenSystem
// without re-simulating or re-indexing.
//
// Note: a system built with an in-memory page store is persisted by
// copying its pages into dir/pages.db.
func (s *System) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("streach: create %s: %w", dir, err)
	}
	writeTo := func(name string, fn func(f *os.File) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return fmt.Errorf("streach: create %s: %w", name, err)
		}
		if err := fn(f); err != nil {
			f.Close()
			return fmt.Errorf("streach: write %s: %w", name, err)
		}
		return f.Close()
	}
	if err := writeTo(fileNetwork, func(f *os.File) error { return roadnet.WriteNetwork(f, s.net) }); err != nil {
		return err
	}
	if err := writeTo(fileDataset, func(f *os.File) error { return traj.WriteDataset(f, s.ds) }); err != nil {
		return err
	}
	if err := writeTo(fileConIndex, func(f *os.File) error { return s.con.Save(f) }); err != nil {
		return err
	}
	// Materialised adjacency rides along so a reopened system starts with
	// warmed Near/Far tables (cold queries skip the travel-time Dijkstras).
	if err := writeTo(fileConAdj, func(f *os.File) error { return s.con.SaveAdjacency(f) }); err != nil {
		return err
	}
	if err := writeTo(fileSTMeta, func(f *os.File) error { return s.st.SaveMeta(f) }); err != nil {
		return err
	}
	// Copy the page store contents (works for both memory- and
	// file-backed systems).
	if err := s.st.Pool().Flush(); err != nil {
		return err
	}
	return writeTo(filePages, func(f *os.File) error {
		buf := make([]byte, storage.PageSize)
		n := s.st.Pool().NumPages()
		for id := storage.PageID(0); int64(id) < n; id++ {
			page, err := s.st.Pool().GetPage(id)
			if err != nil {
				return err
			}
			copy(buf, page)
			if _, err := f.Write(buf); err != nil {
				return err
			}
		}
		return nil
	})
}

// OpenSystem reopens a system saved with Save. PoolPages, the TBS
// policy options, Shards, and PlanCache are taken from idx; granularity
// comes from the saved indexes.
func OpenSystem(dir string, idx IndexConfig) (*System, error) {
	if idx.PoolPages == 0 {
		idx.PoolPages = 1024
	}
	netFile, err := os.Open(filepath.Join(dir, fileNetwork))
	if err != nil {
		return nil, fmt.Errorf("streach: open network: %w", err)
	}
	net, err := roadnet.ReadNetwork(netFile)
	netFile.Close()
	if err != nil {
		return nil, err
	}
	dsFile, err := os.Open(filepath.Join(dir, fileDataset))
	if err != nil {
		return nil, fmt.Errorf("streach: open dataset: %w", err)
	}
	ds, err := traj.ReadDataset(dsFile)
	dsFile.Close()
	if err != nil {
		return nil, err
	}
	conFile, err := os.Open(filepath.Join(dir, fileConIndex))
	if err != nil {
		return nil, fmt.Errorf("streach: open con-index: %w", err)
	}
	con, err := conindex.Load(net, conFile)
	conFile.Close()
	if err != nil {
		return nil, err
	}
	// Restore the persisted adjacency rows when present. The blob is a
	// derived warm cache, so a missing file (pre-adjacency save dir) or a
	// corrupt/mismatched one must not fail the open: every row is fully
	// validated before it is installed, so whatever prefix loaded is
	// exact, and anything not restored just re-materialises lazily.
	if adjFile, err := os.Open(filepath.Join(dir, fileConAdj)); err == nil {
		_ = con.LoadAdjacency(adjFile)
		adjFile.Close()
	}
	store, err := storage.OpenFileStore(filepath.Join(dir, filePages))
	if err != nil {
		return nil, err
	}
	metaFile, err := os.Open(filepath.Join(dir, fileSTMeta))
	if err != nil {
		store.Close()
		return nil, fmt.Errorf("streach: open st-index meta: %w", err)
	}
	st, err := stindex.LoadIndex(net, stindex.Config{
		Store:         store,
		PoolPages:     idx.PoolPages,
		TimeListCache: idx.TimeListCache,
	}, metaFile)
	metaFile.Close()
	if err != nil {
		store.Close()
		return nil, err
	}
	s, err := assembleSystem(net, ds, st, con, idx)
	if err != nil {
		st.Close()
		return nil, err
	}
	return s, nil
}
