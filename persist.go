package streach

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"

	"streach/internal/conindex"
	"streach/internal/ingest"
	"streach/internal/roadnet"
	"streach/internal/stindex"
	"streach/internal/storage"
	"streach/internal/traj"
)

// On-disk layout of a saved system:
//
//	dir/network.bin    road network (roadnet codec)
//	dir/dataset.bin    matched trajectories (traj codec)
//	dir/pages.db       ST-Index time-list pages
//	dir/stindex.meta   ST-Index handle table and metadata
//	dir/conindex.bin   Con-Index speed statistics
//	dir/conindex.adj   Con-Index materialised Near/Far adjacency rows
//	                   (optional warm cache, "CADJ" blob: adaptive
//	                   sparse-list/bitset rows for all four tables; see
//	                   conindex.SaveAdjacency). Save dirs written before
//	                   the adjacency blob existed simply lack the file
//	                   and reopen with cold, lazily-materialised tables.
//
// A live-ingesting system adds a write-ahead log directory:
//
//	dir/wal/           segmented write-ahead log of accepted live
//	                   updates not yet covered by a durable compaction:
//	                   size/age-rotated per-shard segment files
//	                   seg-<epoch>-<seq>.log ("IDSG" format; see
//	                   internal/ingest). OpenSystem replays the shards
//	                   in parallel; a corrupt frame is detected by its
//	                   CRC and the segment truncated to its intact
//	                   prefix, with later segments unaffected — never
//	                   silently merged.
//	dir/ingest.delta   the pre-segmented single-file WAL ("IDLT").
//	                   Still replayed on open for migration; removed by
//	                   the first durable compaction.
const (
	fileNetwork     = "network.bin"
	fileDataset     = "dataset.bin"
	filePages       = "pages.db"
	fileSTMeta      = "stindex.meta"
	fileConIndex    = "conindex.bin"
	fileConAdj      = "conindex.adj"
	fileIngestDelta = "ingest.delta"
	filePlanShapes  = "planshapes.bin"
	walDirName      = "wal"
)

// Save persists the whole system into dir (created if absent): network,
// trajectories, and both indexes. A saved system reopens with OpenSystem
// without re-simulating or re-indexing.
//
// Note: a system built with an in-memory page store is persisted by
// copying its pages into dir/pages.db.
func (s *System) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("streach: create %s: %w", dir, err)
	}
	writeTo := func(name string, fn func(f *os.File) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return fmt.Errorf("streach: create %s: %w", name, err)
		}
		if err := fn(f); err != nil {
			f.Close()
			return fmt.Errorf("streach: write %s: %w", name, err)
		}
		return f.Close()
	}
	if err := writeTo(fileNetwork, func(f *os.File) error { return roadnet.WriteNetwork(f, s.net) }); err != nil {
		return err
	}
	if err := writeTo(fileDataset, func(f *os.File) error { return traj.WriteDataset(f, s.ds) }); err != nil {
		return err
	}
	if err := writeTo(fileConIndex, func(f *os.File) error { return s.con.Save(f) }); err != nil {
		return err
	}
	// Materialised adjacency rides along so a reopened system starts with
	// warmed Near/Far tables (cold queries skip the travel-time Dijkstras).
	if err := writeTo(fileConAdj, func(f *os.File) error { return s.con.SaveAdjacency(f) }); err != nil {
		return err
	}
	if err := writeTo(fileSTMeta, func(f *os.File) error { return s.st.SaveMeta(f) }); err != nil {
		return err
	}
	// Copy the page store contents (works for both memory- and
	// file-backed systems). When the pool's store already is
	// dir/pages.db (a system reopened from this very dir), a flush is
	// the copy — rewriting the file the store holds open would corrupt
	// it.
	if err := s.st.Pool().Flush(); err != nil {
		return err
	}
	if !(s.pagesInDir && s.dir == dir) {
		if err := writeTo(filePages, s.copyPagesTo); err != nil {
			return err
		}
	}
	// The recorded plan shapes ride along (best effort — a hint, not
	// state) so a reopened system warms the same query shapes this one
	// served.
	if err := s.savePlanShapes(dir); err != nil {
		log.Printf("streach: save plan shapes: %v", err)
	}
	// The directory now holds the whole system: remember it so
	// CompactIngest can persist folds (and place the ingest WAL) here.
	s.dir = dir
	return nil
}

// copyPagesTo streams every page of the pool's store into f.
func (s *System) copyPagesTo(f *os.File) error {
	buf := make([]byte, storage.PageSize)
	n := s.st.Pool().NumPages()
	for id := storage.PageID(0); int64(id) < n; id++ {
		page, err := s.st.Pool().GetPage(id)
		if err != nil {
			return err
		}
		copy(buf, page)
		if _, err := f.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// writeFileAtomic writes dir/name via a temp file and rename, so a
// crash mid-write can never leave a half-written file where a valid one
// used to be. The parent directory is fsynced after the rename: without
// it the rename itself can be lost to a power cut, resurrecting the old
// file — legal for the caller (the old state plus a WAL replay), but
// only because the WAL is never retired before this returns.
func writeFileAtomic(dir, name string, fn func(f *os.File) error) error {
	storage.CrashPoint("persist." + name + ".write")
	tmp, err := os.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return fmt.Errorf("streach: create temp for %s: %w", name, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := fn(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("streach: write %s: %w", name, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("streach: sync %s: %w", name, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("streach: close %s: %w", name, err)
	}
	storage.CrashPoint("persist." + name + ".rename")
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		return fmt.Errorf("streach: install %s: %w", name, err)
	}
	storage.CrashPoint("persist." + name + ".dirsync")
	if err := storage.SyncDir(dir); err != nil {
		return fmt.Errorf("streach: sync dir for %s: %w", name, err)
	}
	return nil
}

// persistCompacted makes a just-folded compaction durable in s.dir:
// pages first (the blob data the new handles point into), then the
// ST-Index meta, then the Con-Index statistics and adjacency cache —
// each installed atomically. Ordering matters for crash consistency:
// a crash between steps leaves a meta whose handles all resolve (the
// blob file is append-only) plus a WAL that replays anything newer.
func (s *System) persistCompacted() error {
	// Sync, not just Flush: the new blobs must be on stable storage
	// before a meta whose handles (and tail-bounded checksum) reference
	// them can be installed.
	storage.CrashPoint("persist.pages.flush")
	if err := s.st.Pool().Sync(); err != nil {
		return fmt.Errorf("streach: flush pages: %w", err)
	}
	if !s.pagesInDir {
		if err := writeFileAtomic(s.dir, filePages, s.copyPagesTo); err != nil {
			return err
		}
	}
	if err := writeFileAtomic(s.dir, fileSTMeta, func(f *os.File) error { return s.st.SaveMeta(f) }); err != nil {
		return err
	}
	if err := writeFileAtomic(s.dir, fileConIndex, func(f *os.File) error { return s.con.Save(f) }); err != nil {
		return err
	}
	// The adjacency cache is re-written too: rows invalidated by live
	// speed observations must not resurrect from a stale blob on the
	// next open.
	if err := writeFileAtomic(s.dir, fileConAdj, func(f *os.File) error { return s.con.SaveAdjacency(f) }); err != nil {
		return err
	}
	// Plan shapes last and best effort: they are a warm-start hint, not
	// crash-consistency state, so a failed write must not fail the fold.
	if err := s.savePlanShapes(s.dir); err != nil {
		log.Printf("streach: save plan shapes: %v", err)
	}
	return nil
}

// OpenSystem reopens a system saved with Save. PoolPages, the TBS
// policy options, Shards, and PlanCache are taken from idx; granularity
// comes from the saved indexes.
//
// The network and dataset are the ground truth and must load cleanly.
// Both indexes are derived from them, so a corrupt index file — a
// checksum mismatch, truncation, or any other load failure — is
// detected, logged, and repaired by a cold rebuild from the
// trajectories instead of failing the open (or worse, serving wrong
// answers from flipped bits). The repaired index is re-saved into dir
// (best effort) so the next open is warm again.
func OpenSystem(dir string, idx IndexConfig) (*System, error) {
	if idx.PoolPages == 0 {
		idx.PoolPages = 1024
	}
	netFile, err := os.Open(filepath.Join(dir, fileNetwork))
	if err != nil {
		return nil, fmt.Errorf("streach: open network: %w", err)
	}
	net, err := roadnet.ReadNetwork(netFile)
	netFile.Close()
	if err != nil {
		return nil, err
	}
	dsFile, err := os.Open(filepath.Join(dir, fileDataset))
	if err != nil {
		return nil, fmt.Errorf("streach: open dataset: %w", err)
	}
	ds, err := traj.ReadDataset(dsFile)
	dsFile.Close()
	if err != nil {
		return nil, err
	}
	st, stErr := openSTIndex(dir, net, idx)
	con, conErr := openConIndex(dir, net)
	// Cold rebuilds need the saved granularity; a surviving index carries
	// it, otherwise fall back to the configured (or default) slot width.
	slotSec := idx.SlotSeconds
	if st != nil {
		slotSec = st.SlotSeconds()
	} else if con != nil {
		slotSec = con.SlotSeconds()
	}
	if slotSec == 0 {
		slotSec = 300
	}
	if stErr != nil {
		log.Printf("streach: st-index unreadable (%v): cold rebuild from trajectories", stErr)
		if st, err = rebuildSTIndex(dir, net, ds, idx, slotSec); err != nil {
			return nil, fmt.Errorf("streach: st-index cold rebuild: %w", err)
		}
	}
	if conErr != nil {
		log.Printf("streach: con-index unreadable (%v): cold rebuild from trajectories", conErr)
		if con, err = rebuildConIndex(dir, net, ds, slotSec); err != nil {
			st.Close()
			return nil, fmt.Errorf("streach: con-index cold rebuild: %w", err)
		}
	}
	// Restore the persisted adjacency rows when present. The blob is a
	// derived warm cache, so a missing file (pre-adjacency save dir) or a
	// corrupt/mismatched one must not fail the open: the blob is fully
	// validated (v2: checksum-verified) before anything is installed, and
	// anything not restored just re-materialises lazily.
	if adjFile, err := os.Open(filepath.Join(dir, fileConAdj)); err == nil {
		if aerr := con.LoadAdjacency(adjFile); aerr != nil {
			log.Printf("streach: con-index adjacency cache unreadable (%v): dropped, rows re-materialise lazily", aerr)
		}
		adjFile.Close()
	}
	// Replay the ingest WAL: live updates accepted since the last durable
	// compaction fold back into the delta layer and the speed statistics
	// (after the adjacency load, so replayed observations invalidate any
	// stale restored rows). The legacy single-file log replays first for
	// migration — a corrupt one is detected by its per-batch CRC and
	// dropped, intact batches before the damage kept. A corrupt log is
	// never silently merged.
	walPath := filepath.Join(dir, fileIngestDelta)
	var replayed, replayDropped int
	if n, rerr := ingest.ReplayLog(walPath, func(batch []ingest.Update) error {
		a, d := ingest.ApplyBatch(st, con, batch)
		replayed += a
		replayDropped += d
		return nil
	}); rerr != nil {
		log.Printf("streach: ingest wal corrupt after %d updates (%v): dropped — re-ingest anything newer", n, rerr)
		if remErr := os.Remove(walPath); remErr != nil && !os.IsNotExist(remErr) {
			log.Printf("streach: drop corrupt ingest wal: %v", remErr)
		}
	} else if replayed > 0 || replayDropped > 0 {
		log.Printf("streach: replayed %d live updates from ingest wal (%d dropped)", replayed, replayDropped)
	}
	// Then the segmented WAL, shards in parallel. Frame corruption is
	// contained per segment: the file is truncated to its intact prefix
	// and later segments still replay. The apply callbacks hit the same
	// locked index paths the live worker pool does, so concurrent shard
	// replay is safe; both are idempotent, so records that straddle a
	// repaired tail or a carry record simply re-union.
	var segApplied, segDropped, segObs, segObsDropped atomic.Int64
	segStats, segErr := ingest.ReplaySegments(filepath.Join(dir, walDirName), runtime.GOMAXPROCS(0),
		func(batch []ingest.Update) error {
			a, d := ingest.ApplyBatch(st, con, batch)
			segApplied.Add(int64(a))
			segDropped.Add(int64(d))
			return nil
		},
		func(obs []stindex.DeltaObs) error {
			a, d := ingest.ApplyObs(st, obs)
			segObs.Add(int64(a))
			segObsDropped.Add(int64(d))
			return nil
		})
	if segErr != nil {
		st.Close()
		return nil, fmt.Errorf("streach: replay wal segments: %w", segErr)
	}
	if segStats.Segments > 0 {
		log.Printf("streach: replayed %d wal segments: %d updates, %d carried observations (%d dropped, %d segments repaired, %d bytes truncated)",
			segStats.Segments, segApplied.Load()+segDropped.Load(), segObs.Load(),
			segDropped.Load()+segObsDropped.Load(), segStats.CorruptSegments, segStats.TruncatedBytes)
	}
	s, err := assembleSystem(net, ds, st, con, idx)
	if err != nil {
		st.Close()
		return nil, err
	}
	// Restore the recorded plan shapes when present. Like the adjacency
	// cache, the ring is a derived warm-start hint: any corruption —
	// CRC mismatch, truncation, oversize, invalid shapes — drops it with
	// a log line and the open proceeds with an empty ring.
	if perr := s.loadPlanShapes(dir); perr != nil {
		log.Printf("streach: plan shapes unreadable (%v): dropped, warm planning starts empty", perr)
	}
	s.dir = dir
	s.pagesInDir = true
	return s, nil
}

// openSTIndex loads the persisted ST-Index over dir's page store. Any
// failure — including a checksum mismatch in the meta or the pages —
// closes the store and reports the error for the cold-rebuild path.
func openSTIndex(dir string, net *roadnet.Network, idx IndexConfig) (*stindex.Index, error) {
	store, err := storage.OpenFileStore(filepath.Join(dir, filePages))
	if err != nil {
		return nil, err
	}
	metaFile, err := os.Open(filepath.Join(dir, fileSTMeta))
	if err != nil {
		store.Close()
		return nil, fmt.Errorf("streach: open st-index meta: %w", err)
	}
	st, err := stindex.LoadIndex(net, stindex.Config{
		Store:         store,
		PoolPages:     idx.PoolPages,
		TimeListCache: idx.TimeListCache,
	}, metaFile)
	metaFile.Close()
	if err != nil {
		store.Close()
		return nil, err
	}
	return st, nil
}

// rebuildSTIndex rebuilds the ST-Index from the trajectories over a
// fresh page file, replacing dir's corrupt pages.db, and re-saves the
// meta so the repair is durable (best effort: a failed re-save only
// logs — the in-memory index is already correct).
func rebuildSTIndex(dir string, net *roadnet.Network, ds *traj.Dataset, idx IndexConfig, slotSec int) (*stindex.Index, error) {
	pagePath := filepath.Join(dir, filePages)
	if err := os.Remove(pagePath); err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	store, err := storage.OpenFileStore(pagePath)
	if err != nil {
		return nil, err
	}
	st, err := stindex.Build(net, ds, stindex.Config{
		SlotSeconds:   slotSec,
		PoolPages:     idx.PoolPages,
		TimeListCache: idx.TimeListCache,
		Store:         store,
	})
	if err != nil {
		store.Close()
		return nil, err
	}
	if err := resaveSTMeta(dir, st); err != nil {
		log.Printf("streach: re-save rebuilt st-index: %v", err)
	}
	return st, nil
}

func resaveSTMeta(dir string, st *stindex.Index) error {
	f, err := os.Create(filepath.Join(dir, fileSTMeta))
	if err != nil {
		return err
	}
	if err := st.SaveMeta(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return st.Pool().Flush()
}

// openConIndex loads the persisted Con-Index statistics.
func openConIndex(dir string, net *roadnet.Network) (*conindex.Index, error) {
	conFile, err := os.Open(filepath.Join(dir, fileConIndex))
	if err != nil {
		return nil, fmt.Errorf("streach: open con-index: %w", err)
	}
	defer conFile.Close()
	return conindex.Load(net, conFile)
}

// rebuildConIndex rebuilds the Con-Index from the trajectories and
// re-saves dir's conindex.bin (best effort).
func rebuildConIndex(dir string, net *roadnet.Network, ds *traj.Dataset, slotSec int) (*conindex.Index, error) {
	con, err := conindex.Build(net, ds, conindex.Config{SlotSeconds: slotSec})
	if err != nil {
		return nil, err
	}
	f, cerr := os.Create(filepath.Join(dir, fileConIndex))
	if cerr == nil {
		cerr = con.Save(f)
		if e := f.Close(); cerr == nil {
			cerr = e
		}
	}
	if cerr != nil {
		log.Printf("streach: re-save rebuilt con-index: %v", cerr)
	}
	return con, nil
}
