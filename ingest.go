package streach

import (
	"context"
	"fmt"
	"path/filepath"
	"time"

	"streach/internal/ingest"
	"streach/internal/roadnet"
	"streach/internal/traj"
)

// Live trajectory ingestion (DESIGN.md §13). A built or reopened system
// is no longer frozen at index-construction time: StartIngest attaches
// a batching, worker-pooled writer that folds streaming position
// updates into the ST-Index delta layer and the Con-Index speed
// statistics, queries merge base and delta transparently, and
// CompactIngest folds the accumulated delta into freshly encoded blobs
// — a new index epoch — off the query hot path.

// ErrIngestBackpressure is returned by TryIngest when the ingest queue
// is full: shed the update or retry later. The serving layer maps it to
// a 429.
var ErrIngestBackpressure = ingest.ErrBackpressure

// IngestUpdate is one live position report, already resolved to a road
// segment: the taxi traversed SegmentID on Day between EnterMs and
// ExitMs (milliseconds since that day's midnight) at SpeedMps.
type IngestUpdate struct {
	TaxiID    int32
	Day       int
	SegmentID int32
	EnterMs   int32
	ExitMs    int32
	SpeedMps  float32
}

// IngestConfig controls the live-ingest writer. The zero value is
// usable: two workers, a 4096-update queue, 256-update batches, and a
// write-ahead log at dir/ingest.delta when the system has a save
// directory.
type IngestConfig struct {
	// Workers is the apply worker-pool size (default 2).
	Workers int
	// QueueDepth bounds the pending-update queue (default 4096);
	// TryIngest rejects beyond it.
	QueueDepth int
	// BatchSize is how many updates fold into one index append and one
	// WAL record (default 256).
	BatchSize int
	// FlushInterval bounds how long a partial batch waits (default 50ms).
	FlushInterval time.Duration
	// SpeedBuffer caps how many Con-Index speed samples buffer before
	// being folded into the min/max bounds (default 65536). Trajectory
	// data goes live in the ST-Index delta on every batch; the speed
	// bounds — pruning statistics — fold at FlushIngest/CompactIngest/
	// Close or when this cap fills, so live write load cannot turn the
	// query bounding phase into a per-sample row-recompute storm.
	SpeedBuffer int
	// WALPath overrides the write-ahead log location. Empty uses
	// dir/ingest.delta when the system was opened from (or saved to) a
	// directory; a directory-less system runs without a WAL.
	WALPath string
	// DisableWAL runs without crash durability even when a directory or
	// WALPath is available.
	DisableWAL bool
}

// IngestStats snapshots the live-ingest machinery: the writer counters
// (zero before StartIngest) and the ST-Index delta layer.
type IngestStats struct {
	// Writer counters.
	Accepted  int64 // updates admitted to the queue
	Applied   int64 // updates folded into the indexes
	Dropped   int64 // updates rejected during apply (bad segment/day/taxi/time)
	Rejected  int64 // updates refused by TryIngest (backpressure)
	Batches   int64 // index append batches
	WALErrors int64 // WAL append failures (updates stayed live, not durable)
	QueueLen  int   // updates currently queued
	// PendingSpeedSamples counts Con-Index speed samples buffered for
	// the next fold (FlushIngest, CompactIngest, Close, or the
	// SpeedBuffer cap).
	PendingSpeedSamples int
	// PerShard counts applied updates per owning shard (len 1 when
	// unsharded).
	PerShard []int64
	// ST-Index delta layer.
	DirtyKeys        int   // (segment, slot) keys pending compaction
	PendingObs       int64 // delta observations not yet compacted
	AppendedObs      int64 // cumulative observations accepted
	Epoch            uint64
	DataVersion      uint64
	Compactions      uint64
	LastCompactKeys  int64
	LastCompactPause time.Duration
}

// CompactResult reports one CompactIngest call.
type CompactResult struct {
	// Keys is how many dirty (segment, slot) keys were folded,
	// Observations how many delta observations they held, and Bytes how
	// many freshly encoded blob bytes were appended.
	Keys         int
	Observations int64
	Bytes        int64
	// Pause is the handle-table install critical section — the only
	// moment the fold excludes appends and cache misses.
	Pause time.Duration
	// Epoch is the index epoch after the install.
	Epoch uint64
	// Durable reports whether the fold was persisted (the system has a
	// save directory) and the WAL truncated.
	Durable bool
}

// StartIngest attaches the live-ingest writer to the system. Updates
// stream in through Ingest/TryIngest, fold into the indexes on a small
// worker pool, and become visible to queries within one batch flush.
// When the system has a save directory (OpenSystem, or after Save) a
// write-ahead log at dir/ingest.delta makes accepted updates
// crash-durable between compactions; OpenSystem replays it.
func (s *System) StartIngest(cfg IngestConfig) error {
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	if s.ingestW != nil {
		return fmt.Errorf("streach: ingest already started")
	}
	var wal *ingest.Log
	if !cfg.DisableWAL {
		path := cfg.WALPath
		if path == "" && s.dir != "" {
			path = filepath.Join(s.dir, fileIngestDelta)
		}
		if path != "" {
			var err error
			if wal, err = ingest.OpenLog(path); err != nil {
				return fmt.Errorf("streach: %w", err)
			}
		}
	}
	icfg := ingest.Config{
		Workers:       cfg.Workers,
		QueueDepth:    cfg.QueueDepth,
		BatchSize:     cfg.BatchSize,
		FlushInterval: cfg.FlushInterval,
		SpeedBuffer:   cfg.SpeedBuffer,
		WAL:           wal,
	}
	if c := s.cluster.Load(); c != nil {
		part := c.Partition()
		icfg.Owner = func(seg int) int { return part.Owner(roadnet.SegmentID(seg)) }
		icfg.Shards = part.Shards()
	}
	s.wal = wal
	s.ingestW = ingest.NewWriter(s.st, s.con, icfg)
	return nil
}

// ingestWriter snapshots the writer under the ingest lock.
func (s *System) ingestWriter() *ingest.Writer {
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	return s.ingestW
}

// IngestEnabled reports whether StartIngest has attached a live writer.
func (s *System) IngestEnabled() bool { return s.ingestWriter() != nil }

// stopIngest stops the writer (draining its queue) and closes the WAL.
// Part of Close; idempotent.
func (s *System) stopIngest() error {
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	var err error
	if s.ingestW != nil {
		err = s.ingestW.Close()
		s.ingestW = nil
	}
	if s.wal != nil {
		if cerr := s.wal.Close(); err == nil {
			err = cerr
		}
		s.wal = nil
	}
	return err
}

func toIngestUpdates(updates []IngestUpdate) []ingest.Update {
	out := make([]ingest.Update, len(updates))
	for i, u := range updates {
		out[i] = ingest.Update{
			Taxi:    traj.TaxiID(u.TaxiID),
			Day:     traj.Day(u.Day),
			Seg:     roadnet.SegmentID(u.SegmentID),
			EnterMs: u.EnterMs,
			ExitMs:  u.ExitMs,
			Speed:   u.SpeedMps,
		}
	}
	return out
}

// Ingest enqueues live updates, blocking while the queue is full until
// ctx expires. Requires StartIngest.
func (s *System) Ingest(ctx context.Context, updates []IngestUpdate) error {
	w := s.ingestWriter()
	if w == nil {
		return fmt.Errorf("streach: ingest not started")
	}
	return w.Add(ctx, toIngestUpdates(updates))
}

// TryIngest enqueues live updates without blocking. It returns how many
// were admitted; the remainder failed with ErrIngestBackpressure (queue
// full) or a closed-writer error.
func (s *System) TryIngest(updates []IngestUpdate) (int, error) {
	w := s.ingestWriter()
	if w == nil {
		return 0, fmt.Errorf("streach: ingest not started")
	}
	return w.TryAdd(toIngestUpdates(updates))
}

// FlushIngest blocks until every update accepted so far is folded into
// the indexes (or ctx expires).
func (s *System) FlushIngest(ctx context.Context) error {
	w := s.ingestWriter()
	if w == nil {
		return nil
	}
	return w.Flush(ctx)
}

// IngestStats snapshots the ingest counters and the delta layer. Valid
// before StartIngest (writer counters read zero).
func (s *System) IngestStats() IngestStats {
	ds := s.st.DeltaStats()
	out := IngestStats{
		DirtyKeys:        ds.DirtyKeys,
		PendingObs:       ds.PendingObs,
		AppendedObs:      ds.AppendedObs,
		Epoch:            ds.Epoch,
		DataVersion:      ds.DataVersion,
		Compactions:      ds.Compactions,
		LastCompactKeys:  ds.LastCompactKeys,
		LastCompactPause: ds.LastCompactPause,
	}
	if w := s.ingestWriter(); w != nil {
		ws := w.Stats()
		out.Accepted = ws.Accepted
		out.Applied = ws.Applied
		out.Dropped = ws.Dropped
		out.Rejected = ws.Rejected
		out.Batches = ws.Batches
		out.WALErrors = ws.WALErrors
		out.QueueLen = ws.QueueLen
		out.PendingSpeedSamples = ws.PendingSpeeds
		out.PerShard = ws.PerShard
	}
	return out
}

// IndexEpoch reports the ST-Index epoch, bumped once per compaction.
func (s *System) IndexEpoch() uint64 { return s.st.Epoch() }

// IndexDataVersion reports the live data version, bumped on every
// applied append batch and every compaction. It is folded into the
// shared-plan cache key (and the serving layer's coalesce key via
// DataVersionKey), so cached results never outlive the data they were
// computed from.
func (s *System) IndexDataVersion() uint64 { return s.st.DataVersion() }

// DataVersionKey canonicalises everything that versions the system's
// live data — the ST-Index data version and the Con-Index invalidation
// generation — into the key segment shared by the plan cache and the
// serving layer's coalescer. Two calls returning the same string are
// guaranteed to observe index state producing identical answers.
func (s *System) DataVersionKey() string {
	return fmt.Sprintf("v%d.%d", s.st.DataVersion(), s.con.InvalidationGen())
}

// CompactIngest flushes the pending ingest queue, folds the delta layer
// into freshly encoded blobs, and installs a new index epoch. In-flight
// queries finish on the epoch they started with; only the handle-table
// install (the reported Pause) excludes concurrent appends. When the
// system has a save directory the fold is persisted — pages, ST-Index
// meta, Con-Index statistics and adjacency, each atomically — and the
// WAL truncated; a persist failure leaves the WAL intact so nothing
// accepted is lost across a crash.
func (s *System) CompactIngest(ctx context.Context) (CompactResult, error) {
	// Serialise whole compaction cycles (fold + persist + truncate), not
	// just the folds: two concurrent calls could otherwise interleave a
	// stale persist over a newer one.
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	if w := s.ingestWriter(); w != nil {
		if err := w.Flush(ctx); err != nil {
			return CompactResult{}, fmt.Errorf("streach: flush before compaction: %w", err)
		}
	}
	cs, err := s.st.CompactDeltas()
	if err != nil {
		return CompactResult{}, fmt.Errorf("streach: compact deltas: %w", err)
	}
	res := CompactResult{
		Keys:         cs.Keys,
		Observations: cs.Observations,
		Bytes:        cs.Bytes,
		Pause:        cs.Pause,
		Epoch:        cs.Epoch,
	}
	if s.dir == "" {
		return res, nil
	}
	if err := s.persistCompacted(); err != nil {
		// The fold is live in memory and every accepted update is still
		// in the WAL: the next open replays it, so nothing is lost.
		return res, fmt.Errorf("streach: persist compaction (wal kept for replay): %w", err)
	}
	s.ingestMu.Lock()
	wal := s.wal
	s.ingestMu.Unlock()
	if wal != nil {
		if err := wal.Truncate(); err != nil {
			// Harmless beyond a larger replay: the ST-Index replay is
			// idempotent and only mean-speed accumulators double-count.
			return res, fmt.Errorf("streach: truncate ingest wal: %w", err)
		}
	}
	res.Durable = true
	return res, nil
}
