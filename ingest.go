package streach

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"streach/internal/ingest"
	"streach/internal/roadnet"
	"streach/internal/storage"
	"streach/internal/traj"
)

// Live trajectory ingestion (DESIGN.md §13). A built or reopened system
// is no longer frozen at index-construction time: StartIngest attaches
// a batching, worker-pooled writer that folds streaming position
// updates into the ST-Index delta layer and the Con-Index speed
// statistics, queries merge base and delta transparently, and
// CompactIngest folds the accumulated delta into freshly encoded blobs
// — a new index epoch — off the query hot path.

// ErrIngestBackpressure is returned by TryIngest when the ingest queue
// is full: shed the update or retry later. The serving layer maps it to
// a 429.
var ErrIngestBackpressure = ingest.ErrBackpressure

// IngestUpdate is one live position report, already resolved to a road
// segment: the taxi traversed SegmentID on Day between EnterMs and
// ExitMs (milliseconds since that day's midnight) at SpeedMps.
type IngestUpdate struct {
	TaxiID    int32
	Day       int
	SegmentID int32
	EnterMs   int32
	ExitMs    int32
	SpeedMps  float32
}

// IngestConfig controls the live-ingest writer. The zero value is
// usable: two workers, a 4096-update queue, 256-update batches, and a
// write-ahead log at dir/ingest.delta when the system has a save
// directory.
type IngestConfig struct {
	// Workers is the apply worker-pool size (default 2).
	Workers int
	// QueueDepth bounds the pending-update queue (default 4096);
	// TryIngest rejects beyond it.
	QueueDepth int
	// BatchSize is how many updates fold into one index append and one
	// WAL record (default 256).
	BatchSize int
	// FlushInterval bounds how long a partial batch waits (default 50ms).
	FlushInterval time.Duration
	// SpeedBuffer caps how many Con-Index speed samples buffer before
	// being folded into the min/max bounds (default 65536). Trajectory
	// data goes live in the ST-Index delta on every batch; the speed
	// bounds — pruning statistics — fold at FlushIngest/CompactIngest/
	// Close or when this cap fills, so live write load cannot turn the
	// query bounding phase into a per-sample row-recompute storm.
	SpeedBuffer int
	// WALPath overrides the write-ahead log directory. Empty uses
	// dir/wal when the system was opened from (or saved to) a
	// directory; a directory-less system runs without a WAL.
	WALPath string
	// DisableWAL runs without crash durability even when a directory or
	// WALPath is available.
	DisableWAL bool
	// WALSegmentBytes rotates a WAL segment past this size (default 4 MiB).
	WALSegmentBytes int64
	// WALSegmentAge rotates a WAL segment older than this (default 1m).
	WALSegmentAge time.Duration
	// CompactInterval, when positive, runs incremental compactions on a
	// background loop every interval while dirty keys are pending, with
	// exponential backoff after a persist failure. Zero leaves
	// compaction to explicit CompactIngest calls.
	CompactInterval time.Duration
	// CompactMaxKeys caps how many dirty keys one background compaction
	// cycle folds (default 4096 when the loop is enabled); the rest roll
	// to the next cycle. Zero or negative folds everything.
	CompactMaxKeys int
	// CompactPauseBudget, when positive, adapts the background loop's
	// per-cycle key cap so the install pause stays at or under this
	// budget: a cycle that overshoots halves the cap, a cycle under half
	// the budget with backlog remaining doubles it.
	CompactPauseBudget time.Duration
}

// IngestStats snapshots the live-ingest machinery: the writer counters
// (zero before StartIngest) and the ST-Index delta layer.
type IngestStats struct {
	// Writer counters.
	Accepted  int64 // updates admitted to the queue
	Applied   int64 // updates folded into the indexes
	Dropped   int64 // updates rejected during apply (bad segment/day/taxi/time)
	Rejected  int64 // updates refused by TryIngest (backpressure)
	Batches   int64 // index append batches
	WALErrors int64 // WAL append failures (updates stayed live, not durable)
	QueueLen  int   // updates currently queued
	// PendingSpeedSamples counts Con-Index speed samples buffered for
	// the next fold (FlushIngest, CompactIngest, Close, or the
	// SpeedBuffer cap).
	PendingSpeedSamples int
	// PerShard counts applied updates per owning shard (len 1 when
	// unsharded).
	PerShard []int64
	// DurabilityDegraded is set while WAL appends are failing: the
	// system keeps serving and accepting updates, but acknowledged
	// updates since the failure are not crash-durable. The next
	// successful append clears it.
	DurabilityDegraded bool
	// WALLastError is the most recent WAL append failure ("" when none).
	WALLastError string
	// WALEnabled reports whether a segmented WAL is attached (false
	// before StartIngest, with DisableWAL, or on a directory-less
	// system).
	WALEnabled bool
	// WALSegments counts live WAL segment files (0 without a WAL).
	WALSegments int
	// Background compaction loop counters (zero when the loop is off).
	BackgroundCompactions int64
	BackgroundCompactErrs int64
	// ST-Index delta layer.
	DirtyKeys        int   // (segment, slot) keys pending compaction
	PendingObs       int64 // delta observations not yet compacted
	AppendedObs      int64 // cumulative observations accepted
	Epoch            uint64
	DataVersion      uint64
	Compactions      uint64
	LastCompactKeys  int64
	LastCompactPause time.Duration
}

// CompactResult reports one CompactIngest call.
type CompactResult struct {
	// Keys is how many dirty (segment, slot) keys were folded,
	// Observations how many delta observations they held, and Bytes how
	// many freshly encoded blob bytes were appended.
	Keys         int
	Observations int64
	Bytes        int64
	// Pause is the handle-table install critical section — the only
	// moment the fold excludes appends and cache misses.
	Pause time.Duration
	// Epoch is the index epoch after the install.
	Epoch uint64
	// Durable reports whether the fold was persisted (the system has a
	// save directory) and the covered WAL segments retired.
	Durable bool
	// Remaining counts dirty keys rolled to the next cycle by a
	// budgeted (CompactIngestN) fold; 0 after a full compaction.
	Remaining int
	// CarriedObs counts rolled-over delta observations re-logged to the
	// WAL as carry records so segment retirement never sheds them.
	CarriedObs int
}

// StartIngest attaches the live-ingest writer to the system. Updates
// stream in through Ingest/TryIngest, fold into the indexes on a small
// worker pool, and become visible to queries within one batch flush.
// When the system has a save directory (OpenSystem, or after Save) a
// segmented write-ahead log under dir/wal makes accepted updates
// crash-durable between compactions; OpenSystem replays it in parallel.
// A positive CompactInterval also starts the background incremental
// compaction loop.
func (s *System) StartIngest(cfg IngestConfig) error {
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	if s.ingestW != nil {
		return fmt.Errorf("streach: ingest already started")
	}
	shards := 1
	var owner func(seg int) int
	if c := s.cluster.Load(); c != nil {
		part := c.Partition()
		owner = func(seg int) int { return part.Owner(roadnet.SegmentID(seg)) }
		shards = part.Shards()
	}
	var wal *ingest.SegmentedLog
	if !cfg.DisableWAL {
		walDir := cfg.WALPath
		if walDir == "" && s.dir != "" {
			walDir = filepath.Join(s.dir, walDirName)
		}
		if walDir != "" {
			var err error
			if wal, err = ingest.OpenSegmented(walDir, ingest.SegmentedConfig{
				SegmentBytes: cfg.WALSegmentBytes,
				SegmentAge:   cfg.WALSegmentAge,
				Shards:       shards,
				Epoch:        s.st.Epoch(),
			}); err != nil {
				return fmt.Errorf("streach: %w", err)
			}
		}
	}
	icfg := ingest.Config{
		Workers:       cfg.Workers,
		QueueDepth:    cfg.QueueDepth,
		BatchSize:     cfg.BatchSize,
		FlushInterval: cfg.FlushInterval,
		SpeedBuffer:   cfg.SpeedBuffer,
		Owner:         owner,
		Shards:        shards,
	}
	if wal != nil {
		icfg.WAL = wal
	}
	s.wal = wal
	s.ingestW = ingest.NewWriter(s.st, s.con, icfg)
	if cfg.CompactInterval > 0 {
		maxKeys := cfg.CompactMaxKeys
		if maxKeys == 0 {
			maxKeys = 4096
		}
		s.compactStop = make(chan struct{})
		s.compactDone = make(chan struct{})
		go s.compactLoop(cfg.CompactInterval, maxKeys, cfg.CompactPauseBudget, s.compactStop, s.compactDone)
	}
	return nil
}

// compactLoop runs incremental compactions in the background: every
// interval it folds up to maxKeys of the hottest dirty keys (rolling
// the rest forward), adapting the cap to the pause budget and backing
// off exponentially when a cycle fails (typically a persist error —
// nothing is lost, the WAL keeps everything until a cycle succeeds).
func (s *System) compactLoop(interval time.Duration, maxKeys int, budget time.Duration, stop, done chan struct{}) {
	defer close(done)
	keys := maxKeys
	backoff := interval
	timer := time.NewTimer(interval)
	defer timer.Stop()
	for {
		select {
		case <-stop:
			return
		case <-timer.C:
		}
		if s.st.DeltaStats().DirtyKeys == 0 {
			timer.Reset(interval)
			continue
		}
		res, err := s.CompactIngestN(context.Background(), keys)
		if err != nil {
			s.bgCompactErrs.Add(1)
			backoff *= 2
			if backoff > 16*interval {
				backoff = 16 * interval
			}
			log.Printf("streach: background compaction failed (retrying in %s): %v", backoff, err)
			timer.Reset(backoff)
			continue
		}
		backoff = interval
		s.bgCompacts.Add(1)
		if budget > 0 && keys > 0 {
			// Keep the install pause at or under its budget: overshooting
			// halves the per-cycle cap, comfortably undershooting with
			// backlog left doubles it.
			if res.Pause > budget && keys > 64 {
				keys /= 2
				if keys < 64 {
					keys = 64
				}
			} else if res.Pause < budget/2 && res.Remaining > 0 {
				keys *= 2
			}
		}
		if res.Remaining > 0 {
			// Backlog left: come back sooner than a full interval.
			timer.Reset(interval / 4)
		} else {
			timer.Reset(interval)
		}
	}
}

// ingestWriter snapshots the writer under the ingest lock.
func (s *System) ingestWriter() *ingest.Writer {
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	return s.ingestW
}

// IngestEnabled reports whether StartIngest has attached a live writer.
func (s *System) IngestEnabled() bool { return s.ingestWriter() != nil }

// stopIngest stops the background compaction loop and the writer
// (draining its queue), then closes the WAL. Part of Close; idempotent.
func (s *System) stopIngest() error {
	// Stop the loop outside ingestMu: a mid-cycle CompactIngestN takes
	// ingestMu itself, so waiting for it under the lock would deadlock.
	s.ingestMu.Lock()
	stop, done := s.compactStop, s.compactDone
	s.compactStop, s.compactDone = nil, nil
	s.ingestMu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	var err error
	if s.ingestW != nil {
		err = s.ingestW.Close()
		s.ingestW = nil
	}
	if s.wal != nil {
		if cerr := s.wal.Close(); err == nil {
			err = cerr
		}
		s.wal = nil
	}
	return err
}

func toIngestUpdates(updates []IngestUpdate) []ingest.Update {
	out := make([]ingest.Update, len(updates))
	for i, u := range updates {
		out[i] = ingest.Update{
			Taxi:    traj.TaxiID(u.TaxiID),
			Day:     traj.Day(u.Day),
			Seg:     roadnet.SegmentID(u.SegmentID),
			EnterMs: u.EnterMs,
			ExitMs:  u.ExitMs,
			Speed:   u.SpeedMps,
		}
	}
	return out
}

// Ingest enqueues live updates, blocking while the queue is full until
// ctx expires. Requires StartIngest.
func (s *System) Ingest(ctx context.Context, updates []IngestUpdate) error {
	w := s.ingestWriter()
	if w == nil {
		return fmt.Errorf("streach: ingest not started")
	}
	return w.Add(ctx, toIngestUpdates(updates))
}

// TryIngest enqueues live updates without blocking. It returns how many
// were admitted; the remainder failed with ErrIngestBackpressure (queue
// full) or a closed-writer error.
func (s *System) TryIngest(updates []IngestUpdate) (int, error) {
	w := s.ingestWriter()
	if w == nil {
		return 0, fmt.Errorf("streach: ingest not started")
	}
	return w.TryAdd(toIngestUpdates(updates))
}

// FlushIngest blocks until every update accepted so far is folded into
// the indexes (or ctx expires).
func (s *System) FlushIngest(ctx context.Context) error {
	w := s.ingestWriter()
	if w == nil {
		return nil
	}
	return w.Flush(ctx)
}

// IngestStats snapshots the ingest counters and the delta layer. Valid
// before StartIngest (writer counters read zero).
func (s *System) IngestStats() IngestStats {
	ds := s.st.DeltaStats()
	out := IngestStats{
		DirtyKeys:        ds.DirtyKeys,
		PendingObs:       ds.PendingObs,
		AppendedObs:      ds.AppendedObs,
		Epoch:            ds.Epoch,
		DataVersion:      ds.DataVersion,
		Compactions:      ds.Compactions,
		LastCompactKeys:  ds.LastCompactKeys,
		LastCompactPause: ds.LastCompactPause,
	}
	if w := s.ingestWriter(); w != nil {
		ws := w.Stats()
		out.Accepted = ws.Accepted
		out.Applied = ws.Applied
		out.Dropped = ws.Dropped
		out.Rejected = ws.Rejected
		out.Batches = ws.Batches
		out.WALErrors = ws.WALErrors
		out.QueueLen = ws.QueueLen
		out.PendingSpeedSamples = ws.PendingSpeeds
		out.PerShard = ws.PerShard
		out.DurabilityDegraded = ws.DurabilityDegraded
		out.WALLastError = ws.WALLastError
	}
	s.ingestMu.Lock()
	wal := s.wal
	s.ingestMu.Unlock()
	if wal != nil {
		ls := wal.Stats()
		out.WALEnabled = true
		out.WALSegments = ls.Segments
		// The log's own view of degradation (append retries exhausted,
		// carry-record failures) folds in alongside the writer's.
		if ls.Degraded {
			out.DurabilityDegraded = true
		}
		if out.WALLastError == "" {
			out.WALLastError = ls.LastError
		}
	}
	out.BackgroundCompactions = s.bgCompacts.Load()
	out.BackgroundCompactErrs = s.bgCompactErrs.Load()
	return out
}

// IndexEpoch reports the ST-Index epoch, bumped once per compaction.
func (s *System) IndexEpoch() uint64 { return s.st.Epoch() }

// IndexDataVersion reports the live data version, bumped on every
// applied append batch and every compaction. It is folded into the
// shared-plan cache key (and the serving layer's coalesce key via
// DataVersionKey), so cached results never outlive the data they were
// computed from.
func (s *System) IndexDataVersion() uint64 { return s.st.DataVersion() }

// DataVersionKey canonicalises everything that versions the system's
// live data — the ST-Index data version and the Con-Index invalidation
// generation — into the key segment shared by the plan cache and the
// serving layer's coalescer. Two calls returning the same string are
// guaranteed to observe index state producing identical answers.
func (s *System) DataVersionKey() string {
	return fmt.Sprintf("v%d.%d", s.st.DataVersion(), s.con.InvalidationGen())
}

// CompactIngest flushes the pending ingest queue, folds the whole delta
// layer into freshly encoded blobs, and installs a new index epoch. See
// CompactIngestN for the fold/persist/retire protocol.
func (s *System) CompactIngest(ctx context.Context) (CompactResult, error) {
	return s.CompactIngestN(ctx, 0)
}

// CompactIngestN is CompactIngest with a key budget: maxKeys > 0 folds
// only the hottest maxKeys dirty (segment, slot) keys — bounding the
// encode work and the install pause — and rolls the rest to the next
// cycle (reported as Remaining). In-flight queries finish on the epoch
// they started with; only the handle-table install (the reported Pause)
// excludes concurrent appends.
//
// When the system has a save directory the cycle is durable, in an
// order that never sheds an acknowledged update:
//
//  1. the WAL is sealed, fixing the retirement cut — every record at or
//     below it is in the delta snapshot the fold sees;
//  2. the fold is persisted (pages synced, then ST-Index meta,
//     Con-Index statistics, and adjacency, each installed atomically);
//  3. observations the budget rolled over are re-logged as WAL carry
//     records (their speed statistics are already durable from step 2);
//  4. only then are the covered segments retired.
//
// A failure at any step keeps the sealed segments: the fold stays live
// in memory and the next open replays everything newer than the last
// durable epoch. Replay is idempotent for the ST-Index delta (set
// union) and the Con-Index min/max bounds; only mean-speed accumulators
// can double-count across a partial cycle.
func (s *System) CompactIngestN(ctx context.Context, maxKeys int) (CompactResult, error) {
	// Serialise whole compaction cycles (seal + fold + persist + carry +
	// retire), not just the folds: two concurrent calls could otherwise
	// interleave a stale persist over a newer one.
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	if w := s.ingestWriter(); w != nil {
		if err := w.Flush(ctx); err != nil {
			return CompactResult{}, fmt.Errorf("streach: flush before compaction: %w", err)
		}
	}
	s.ingestMu.Lock()
	wal := s.wal
	s.ingestMu.Unlock()
	var cut uint64
	if wal != nil && s.dir != "" {
		// Seal before the fold snapshot: every WAL record at or below the
		// cut is already applied to the delta layer (the writer appends to
		// the index before the WAL), so the snapshot covers it.
		cut = wal.Seal()
	}
	cs, err := s.st.CompactDeltasBudget(maxKeys)
	if err != nil {
		return CompactResult{}, fmt.Errorf("streach: compact deltas: %w", err)
	}
	res := CompactResult{
		Keys:         cs.Keys,
		Observations: cs.Observations,
		Bytes:        cs.Bytes,
		Pause:        cs.Pause,
		Epoch:        cs.Epoch,
		Remaining:    cs.Remaining,
	}
	// The epoch swap just invalidated every cached plan (their keys carry
	// the data version): re-plan the hot shapes in the background so
	// steady traffic doesn't pay the cold-planning tail after each fold.
	s.warmPlansAsync()
	if s.dir == "" {
		return res, nil
	}
	if err := s.persistCompacted(); err != nil {
		// The fold is live in memory and every accepted update is still
		// in the WAL (nothing was retired): the next open replays it, so
		// nothing is lost.
		return res, fmt.Errorf("streach: persist compaction (wal kept for replay): %w", err)
	}
	if wal != nil {
		wal.SetEpoch(cs.Epoch)
		// Re-log what the budget rolled over before retiring the segments
		// it came from. PendingDelta may also include observations newer
		// than the cut (their segments survive retirement); replaying
		// those twice is harmless — the delta layer is a set union.
		carry := s.st.PendingDelta()
		for len(carry) > 0 {
			n := len(carry)
			if n > 1<<16 {
				n = 1 << 16
			}
			if err := wal.AppendObs(0, carry[:n]); err != nil {
				// Without a durable carry the rolled-over keys would ride
				// only on the old segments: keep them (skip retirement).
				return res, fmt.Errorf("streach: carry rolled-over delta to wal (segments kept for replay): %w", err)
			}
			res.CarriedObs += n
			carry = carry[n:]
		}
		if err := wal.Retire(cut); err != nil {
			// Leftover segments cost reopen time, never correctness:
			// replay is idempotent.
			return res, fmt.Errorf("streach: retire wal segments: %w", err)
		}
	}
	// A pre-segmented save dir may still hold the legacy single-file WAL
	// (already replayed on open); this durable fold covers it, so the
	// migration completes here.
	if legacy := filepath.Join(s.dir, fileIngestDelta); wal != nil {
		if err := os.Remove(legacy); err == nil {
			storage.SyncDir(s.dir)
		} else if !os.IsNotExist(err) {
			log.Printf("streach: remove legacy ingest wal: %v", err)
		}
	}
	res.Durable = true
	return res, nil
}
