package streach

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// warmTestSystem builds a private system with the plan cache on, so
// warm-pipeline tests don't disturb the shared fixtures' counters.
func warmTestSystem(t *testing.T) *System {
	t.Helper()
	base := smallSystem(t)
	sys, err := NewSystemFromData(base.Network(), base.Dataset(), DefaultIndexConfig())
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestShapeRecorderTop(t *testing.T) {
	r := newShapeRecorder()
	shape := func(start time.Duration) planShape {
		return planShape{Kind: KindReach, Start: start, Duration: 10 * time.Minute,
			Locations: []Location{{Lat: 22.5, Lng: 114}}}
	}
	// "b" recorded three times, "a" twice, "c" once: top must order by
	// frequency.
	for _, k := range []string{"a", "b", "c", "b", "a", "b"} {
		r.record(shape(time.Duration(k[0])*time.Hour), k)
	}
	top := r.top(2)
	if len(top) != 2 {
		t.Fatalf("top(2) returned %d shapes", len(top))
	}
	if top[0].Start != time.Duration('b')*time.Hour || top[1].Start != time.Duration('a')*time.Hour {
		t.Fatalf("top order wrong: %v, %v", top[0].Start, top[1].Start)
	}
	// Shapes over the location cap or with no locations are not recorded.
	r2 := newShapeRecorder()
	r2.record(planShape{Kind: KindReach}, "empty")
	r2.record(planShape{Kind: KindMulti, Locations: make([]Location, planShapeMaxLocs+1)}, "huge")
	if got, _ := r2.snapshot(); len(got) != 0 {
		t.Fatalf("uncacheable shapes recorded: %d", len(got))
	}
	// The ring stays bounded and keeps the newest entries.
	r3 := newShapeRecorder()
	for i := 0; i < planShapeRingCap+50; i++ {
		r3.record(shape(time.Duration(i)*time.Second), "k")
	}
	shapes, _ := r3.snapshot()
	if len(shapes) != planShapeRingCap {
		t.Fatalf("ring length %d, want %d", len(shapes), planShapeRingCap)
	}
	if shapes[len(shapes)-1].Start != time.Duration(planShapeRingCap+49)*time.Second {
		t.Fatalf("ring lost the newest entry: %v", shapes[len(shapes)-1].Start)
	}
}

func TestPlanShapesCodecRoundTrip(t *testing.T) {
	shapes := []planShape{
		{Kind: KindReach, Algorithm: AlgoBounded, OptionBits: 3, Start: 8 * time.Hour,
			Duration: 10 * time.Minute, Locations: []Location{{Lat: 22.51, Lng: 114.02}}},
		{Kind: KindMulti, Start: 17 * time.Hour, Duration: 45 * time.Minute,
			Locations: []Location{{Lat: 22.5, Lng: 114}, {Lat: 22.52, Lng: 114.03}}},
		{Kind: KindReverse, Start: 0, Duration: time.Minute,
			Locations: []Location{{Lat: -1.5, Lng: 100.25}}},
	}
	buf := encodePlanShapes(shapes)
	got, err := decodePlanShapes(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(shapes) {
		t.Fatalf("decoded %d shapes, want %d", len(got), len(shapes))
	}
	for i := range shapes {
		a, b := shapes[i], got[i]
		if a.Kind != b.Kind || a.Algorithm != b.Algorithm || a.OptionBits != b.OptionBits ||
			a.Start != b.Start || a.Duration != b.Duration || len(a.Locations) != len(b.Locations) {
			t.Fatalf("shape %d mismatch: %+v vs %+v", i, a, b)
		}
		for j := range a.Locations {
			if a.Locations[j] != b.Locations[j] {
				t.Fatalf("shape %d location %d mismatch", i, j)
			}
		}
	}
}

// TestPlanShapesBitFlipFuzz is the robustness satellite: any single-bit
// flip in planshapes.bin must either decode to the identical ring (a
// CRC-32C miss on one flipped bit is impossible) or fail cleanly — and
// an OpenSystem over a corrupt file must drop the ring, never the open.
func TestPlanShapesBitFlipFuzz(t *testing.T) {
	shapes := []planShape{
		{Kind: KindReach, Algorithm: AlgoBounded, Start: 8 * time.Hour,
			Duration: 10 * time.Minute, Locations: []Location{{Lat: 22.51, Lng: 114.02}}},
		{Kind: KindReverse, OptionBits: 1, Start: 17 * time.Hour,
			Duration: 45 * time.Minute, Locations: []Location{{Lat: 22.5, Lng: 114}}},
	}
	buf := encodePlanShapes(shapes)
	rng := rand.New(rand.NewSource(42))
	flips := len(buf) * 8
	if flips > 2000 {
		flips = 2000
	}
	for i := 0; i < flips; i++ {
		bit := rng.Intn(len(buf) * 8)
		mut := append([]byte(nil), buf...)
		mut[bit/8] ^= 1 << (bit % 8)
		if _, err := decodePlanShapes(mut); err == nil {
			t.Fatalf("bit flip at %d decoded cleanly", bit)
		}
	}
	// Truncations must fail too, not panic.
	for _, cut := range []int{0, 1, 4, 7, 8, len(buf) / 2, len(buf) - 1} {
		if _, err := decodePlanShapes(buf[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded cleanly", cut)
		}
	}
}

// TestOpenSystemCorruptPlanShapes: a flipped bit in the persisted file
// must not fail the reopen — the ring is dropped and warming starts
// empty.
func TestOpenSystemCorruptPlanShapes(t *testing.T) {
	sys := warmTestSystem(t)
	loc := smallSystem(t).BusiestLocation(9 * time.Hour)
	if _, err := sys.Do(context.Background(), ReachRequest(loc, 9*time.Hour, 10*time.Minute, 0.2)); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := sys.Save(dir); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, filePlanShapes)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got, derr := decodePlanShapes(raw); derr != nil || len(got) == 0 {
		t.Fatalf("saved ring unreadable or empty (%v, %d shapes)", derr, len(got))
	}
	raw[len(raw)/2] ^= 0x10
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	reopened, err := OpenSystem(dir, DefaultIndexConfig())
	if err != nil {
		t.Fatalf("open failed on corrupt plan shapes: %v", err)
	}
	defer reopened.Close()
	if got, _ := reopened.shapes.snapshot(); len(got) != 0 {
		t.Fatalf("corrupt ring partially restored: %d shapes", len(got))
	}
	// An oversize file is corruption too.
	if err := os.WriteFile(path, make([]byte, planShapesMaxBytes+1), 0o644); err != nil {
		t.Fatal(err)
	}
	reopened2, err := OpenSystem(dir, DefaultIndexConfig())
	if err != nil {
		t.Fatalf("open failed on oversize plan shapes: %v", err)
	}
	reopened2.Close()
}

// TestWarmPlansEffectiveness: a warmed shape answers its next query
// from the cache — a hit without a preceding organic miss — and the
// warm pass is visible in SharingStats.PlansWarmed only.
func TestWarmPlansEffectiveness(t *testing.T) {
	sys := warmTestSystem(t)
	loc := smallSystem(t).BusiestLocation(9 * time.Hour)
	req := ReachRequest(loc, 9*time.Hour, 10*time.Minute, 0.2)
	if _, err := sys.Do(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if miss := sys.SharingStats().PlanCacheMisses; miss != 1 {
		t.Fatalf("setup: %d misses, want 1", miss)
	}
	// Simulate the post-epoch-swap cold cache.
	sys.plans.clear()
	warmed, err := sys.WarmPlans(context.Background(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if warmed != 1 {
		t.Fatalf("WarmPlans built %d plans, want 1", warmed)
	}
	st := sys.SharingStats()
	if st.PlansWarmed != 1 {
		t.Fatalf("PlansWarmed = %d, want 1", st.PlansWarmed)
	}
	if _, err := sys.Do(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	after := sys.SharingStats()
	if after.PlanCacheHits != st.PlanCacheHits+1 || after.PlanCacheMisses != st.PlanCacheMisses {
		t.Fatalf("warmed shape not served from cache: hits %d->%d misses %d->%d",
			st.PlanCacheHits, after.PlanCacheHits, st.PlanCacheMisses, after.PlanCacheMisses)
	}
	// Warming again is a no-op: the shape is already cached.
	if warmed, err = sys.WarmPlans(context.Background(), 8); err != nil || warmed != 0 {
		t.Fatalf("re-warm built %d plans (%v), want 0", warmed, err)
	}
}

// TestWarmPlansPersistedAcrossReopen: the recorded shapes ride Save and
// OpenSystem, so a reopened system warms the shapes its predecessor
// served.
func TestWarmPlansPersistedAcrossReopen(t *testing.T) {
	sys := warmTestSystem(t)
	loc := smallSystem(t).BusiestLocation(9 * time.Hour)
	req := ReachRequest(loc, 9*time.Hour, 10*time.Minute, 0.2)
	if _, err := sys.Do(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := sys.Save(dir); err != nil {
		t.Fatal(err)
	}
	reopened, err := OpenSystem(dir, DefaultIndexConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	warmed, err := reopened.WarmPlans(context.Background(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if warmed != 1 {
		t.Fatalf("reopened system warmed %d plans, want 1", warmed)
	}
	if _, err := reopened.Do(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	st := reopened.SharingStats()
	if st.PlanCacheHits != 1 || st.PlanCacheMisses != 0 {
		t.Fatalf("reopened warm plan not hit: hits=%d misses=%d", st.PlanCacheHits, st.PlanCacheMisses)
	}
}

// TestEnableWarmPlanning: the background trigger builds plans and is
// re-armed by compaction epoch swaps; Close waits it out.
func TestEnableWarmPlanning(t *testing.T) {
	sys := warmTestSystem(t)
	loc := smallSystem(t).BusiestLocation(9 * time.Hour)
	req := ReachRequest(loc, 9*time.Hour, 10*time.Minute, 0.2)
	if _, err := sys.Do(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	sys.plans.clear()
	sys.EnableWarmPlanning(8)
	deadline := time.Now().Add(5 * time.Second)
	for sys.SharingStats().PlansWarmed == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background warm pass never completed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	sys.warmWG.Wait()
	before := sys.SharingStats()
	if _, err := sys.Do(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if after := sys.SharingStats(); after.PlanCacheHits != before.PlanCacheHits+1 {
		t.Fatalf("background-warmed shape missed the cache")
	}
}
