package streach

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var (
	sysOnce sync.Once
	testSys *System
	sysErr  error
)

// smallSystem builds a small shared system once for all facade tests.
func smallSystem(t *testing.T) *System {
	t.Helper()
	sysOnce.Do(func() {
		city := CityConfig{
			OriginLat: 22.50, OriginLng: 114.00,
			Rows: 8, Cols: 8,
			SpacingMeters:   900,
			LocalFraction:   0.4,
			ResegmentMeters: 450,
			Seed:            3,
		}
		fleet := FleetConfig{Taxis: 80, Days: 6, Seed: 4}
		// The shared fixture disables the cross-batch plan cache: many
		// tests here pin per-execution observables (cancellation
		// checkpoints, IO and cache counters) that a cached plan would
		// legitimately skip. The cache has its own tests over dedicated
		// systems (plancache_test.go).
		idx := DefaultIndexConfig()
		idx.PlanCache = -1
		testSys, sysErr = NewSystem(city, fleet, idx)
	})
	if sysErr != nil {
		t.Fatal(sysErr)
	}
	return testSys
}

func testQuery(s *System) Query {
	loc := s.BusiestLocation(11 * time.Hour)
	return Query{
		Lat: loc.Lat, Lng: loc.Lng,
		Start:    11 * time.Hour,
		Duration: 10 * time.Minute,
		Prob:     0.2,
	}
}

func TestNewSystemAndStats(t *testing.T) {
	s := smallSystem(t)
	st := s.Stats()
	if st.Segments == 0 || st.Vertices == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Taxis != 80 || st.Days != 6 {
		t.Fatalf("fleet stats wrong: %+v", st)
	}
	if st.SlotSeconds != 300 {
		t.Fatalf("slot seconds = %d", st.SlotSeconds)
	}
	if st.RoadKm <= 0 || st.Visits == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestReach(t *testing.T) {
	s := smallSystem(t)
	region, err := s.Reach(testQuery(s))
	if err != nil {
		t.Fatal(err)
	}
	if len(region.SegmentIDs) == 0 {
		t.Fatal("empty region from busiest location at 11:00")
	}
	if region.RoadKm <= 0 {
		t.Fatal("region should have road length")
	}
	if region.Metrics.MaxRegion < len(region.SegmentIDs) {
		t.Fatalf("max region %d < result %d", region.Metrics.MaxRegion, len(region.SegmentIDs))
	}
	for i := 1; i < len(region.SegmentIDs); i++ {
		if region.SegmentIDs[i-1] >= region.SegmentIDs[i] {
			t.Fatal("segment IDs should be ascending and unique")
		}
	}
}

func TestReachESSlowerButVerifiesMore(t *testing.T) {
	s := smallSystem(t)
	q := testQuery(s)
	fast, err := s.Reach(q)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := s.ReachES(q)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Metrics.Evaluated <= fast.Metrics.Evaluated {
		t.Fatalf("ES evaluated %d, SQMB+TBS %d: baseline should verify more segments",
			slow.Metrics.Evaluated, fast.Metrics.Evaluated)
	}
}

func TestReachMulti(t *testing.T) {
	s := smallSystem(t)
	q := testQuery(s)
	locs := []Location{
		{q.Lat, q.Lng},
		{q.Lat + 0.01, q.Lng},
		{q.Lat, q.Lng + 0.01},
	}
	m, err := s.ReachMulti(locs, q.Start, q.Duration, q.Prob)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := s.ReachMultiSequential(locs, q.Start, q.Duration, q.Prob)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.SegmentIDs) == 0 || len(seq.SegmentIDs) == 0 {
		t.Fatal("multi-location queries should find regions")
	}
	// The m-query region must cover (most of) each single region's union;
	// check it at least covers the single-location region.
	one, err := s.Reach(q)
	if err != nil {
		t.Fatal(err)
	}
	covered := 0
	for _, id := range one.SegmentIDs {
		if m.Contains(id) {
			covered++
		}
	}
	if frac := float64(covered) / float64(len(one.SegmentIDs)); frac < 0.8 {
		t.Fatalf("m-query covers only %.0f%% of the first s-query region", frac*100)
	}
}

func TestQueryValidationSurfacesErrors(t *testing.T) {
	s := smallSystem(t)
	q := testQuery(s)
	q.Prob = 0
	if _, err := s.Reach(q); err == nil {
		t.Fatal("Prob=0 should error")
	}
	q = testQuery(s)
	q.Duration = 0
	if _, err := s.Reach(q); err == nil {
		t.Fatal("zero duration should error")
	}
	if _, err := s.ReachMulti(nil, 11*time.Hour, 10*time.Minute, 0.2); err == nil {
		t.Fatal("no locations should error")
	}
}

func TestGeoJSONWellFormed(t *testing.T) {
	s := smallSystem(t)
	region, err := s.Reach(testQuery(s))
	if err != nil {
		t.Fatal(err)
	}
	gj, err := region.GeoJSON()
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Type     string `json:"type"`
		Features []struct {
			Type     string `json:"type"`
			Geometry struct {
				Type        string       `json:"type"`
				Coordinates [][2]float64 `json:"coordinates"`
			} `json:"geometry"`
			Properties map[string]interface{} `json:"properties"`
		} `json:"features"`
	}
	if err := json.Unmarshal([]byte(gj), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if parsed.Type != "FeatureCollection" {
		t.Fatalf("type = %q", parsed.Type)
	}
	if len(parsed.Features) != len(region.SegmentIDs) {
		t.Fatalf("features = %d, want %d", len(parsed.Features), len(region.SegmentIDs))
	}
	for _, f := range parsed.Features {
		if f.Geometry.Type != "LineString" {
			t.Fatalf("geometry type = %q", f.Geometry.Type)
		}
		if f.Properties["segment"] == nil || f.Properties["class"] == nil {
			t.Fatal("missing properties")
		}
	}
}

func TestRegionBounds(t *testing.T) {
	s := smallSystem(t)
	region, err := s.Reach(testQuery(s))
	if err != nil {
		t.Fatal(err)
	}
	minLat, minLng, maxLat, maxLng, ok := region.Bounds()
	if !ok {
		t.Fatal("bounds should exist")
	}
	if minLat >= maxLat || minLng >= maxLng {
		t.Fatalf("degenerate bounds: %v %v %v %v", minLat, minLng, maxLat, maxLng)
	}
	empty := &Region{sys: s}
	if _, _, _, _, ok := empty.Bounds(); ok {
		t.Fatal("empty region should have no bounds")
	}
}

func TestRegionContains(t *testing.T) {
	r := &Region{SegmentIDs: []int32{1, 4, 9}}
	for _, id := range []int32{1, 4, 9} {
		if !r.Contains(id) {
			t.Fatalf("Contains(%d) = false", id)
		}
	}
	for _, id := range []int32{0, 2, 10} {
		if r.Contains(id) {
			t.Fatalf("Contains(%d) = true", id)
		}
	}
}

func TestFileBackedSystem(t *testing.T) {
	city := CityConfig{
		OriginLat: 22.50, OriginLng: 114.00,
		Rows: 4, Cols: 4, SpacingMeters: 800, LocalFraction: 0.3,
		ResegmentMeters: 400, Seed: 9,
	}
	fleet := FleetConfig{Taxis: 20, Days: 3, Seed: 9}
	idx := DefaultIndexConfig()
	idx.PageFile = filepath.Join(t.TempDir(), "pages.db")
	sys, err := NewSystem(city, fleet, idx)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	loc := sys.BusiestLocation(10 * time.Hour)
	region, err := sys.Reach(Query{Lat: loc.Lat, Lng: loc.Lng, Start: 10 * time.Hour, Duration: 10 * time.Minute, Prob: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if region.Metrics.PageReads == 0 && region.Metrics.PageHits == 0 {
		t.Fatal("file-backed query should touch pages")
	}
}

func TestBusiestLocationDeterministic(t *testing.T) {
	s := smallSystem(t)
	a := s.BusiestLocation(11 * time.Hour)
	b := s.BusiestLocation(11 * time.Hour)
	if a != b {
		t.Fatal("BusiestLocation should be deterministic")
	}
}

func TestRouteTimeDependent(t *testing.T) {
	s := smallSystem(t)
	loc := s.BusiestLocation(11 * time.Hour)
	far := Location{Lat: loc.Lat + 0.03, Lng: loc.Lng + 0.03}
	night, err := s.Route(Location{loc.Lat, loc.Lng}, far, 3*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	rush, err := s.Route(Location{loc.Lat, loc.Lng}, far, 18*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if rush.TravelTime <= night.TravelTime {
		t.Fatalf("rush ETA %v should exceed night ETA %v", rush.TravelTime, night.TravelTime)
	}
	ff, err := s.RouteFreeFlow(Location{loc.Lat, loc.Lng}, far)
	if err != nil {
		t.Fatal(err)
	}
	if ff.TravelTime > night.TravelTime {
		t.Fatalf("free-flow ETA %v should be the optimistic bound (night %v)", ff.TravelTime, night.TravelTime)
	}
	if len(ff.SegmentIDs) == 0 || ff.DistanceKm <= 0 {
		t.Fatalf("degenerate free-flow route: %+v", ff)
	}
}

func TestLeafletHTML(t *testing.T) {
	s := smallSystem(t)
	region, err := s.Reach(testQuery(s))
	if err != nil {
		t.Fatal(err)
	}
	html, err := region.LeafletHTML("test region")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<!DOCTYPE html>", "leaflet", "FeatureCollection", "test region", "fitBounds"} {
		if !strings.Contains(html, want) {
			t.Fatalf("leaflet page missing %q", want)
		}
	}
	empty := &Region{sys: s}
	if _, err := empty.LeafletHTML("empty"); err == nil {
		t.Fatal("empty region should not render")
	}
}

func TestSystemSaveOpenRoundTrip(t *testing.T) {
	s := smallSystem(t)
	q := testQuery(s)
	want, err := s.Reach(q)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "saved")
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	reopened, err := OpenSystem(dir, DefaultIndexConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	got, err := reopened.Reach(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.SegmentIDs) != len(want.SegmentIDs) {
		t.Fatalf("reopened system region has %d segments, want %d", len(got.SegmentIDs), len(want.SegmentIDs))
	}
	for i := range want.SegmentIDs {
		if got.SegmentIDs[i] != want.SegmentIDs[i] {
			t.Fatalf("reopened region differs at %d", i)
		}
	}
	// Stats must survive too.
	if reopened.Stats() != s.Stats() {
		t.Fatalf("stats differ after reopen: %+v vs %+v", reopened.Stats(), s.Stats())
	}
}

func TestOpenSystemMissingDir(t *testing.T) {
	if _, err := OpenSystem(filepath.Join(t.TempDir(), "nope"), DefaultIndexConfig()); err == nil {
		t.Fatal("missing directory should error")
	}
}

func TestRegionProbabilities(t *testing.T) {
	s := smallSystem(t)
	region, err := s.Reach(testQuery(s))
	if err != nil {
		t.Fatal(err)
	}
	if len(region.Probabilities) != len(region.SegmentIDs) {
		t.Fatalf("probabilities (%d) not parallel to segments (%d)",
			len(region.Probabilities), len(region.SegmentIDs))
	}
	verified := 0
	for _, p := range region.Probabilities {
		switch {
		case p == -1:
			// admitted unverified (min bounding region)
		case p >= float32(0.2) && p <= 1:
			verified++
		default:
			t.Fatalf("probability %v out of range", p)
		}
	}
	if verified == 0 {
		t.Fatal("no verified probabilities in the result")
	}
	// ES verifies everything, so no -1 entries.
	es, err := s.ReachES(testQuery(s))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range es.Probabilities {
		if p == -1 {
			t.Fatal("ES result should have no unverified segments")
		}
	}
}
