package streach

import (
	"context"
	"testing"
	"time"
)

// resilienceSystem builds a dedicated 4-shard system with the overload
// self-protection knobs wired through IndexConfig — the configuration
// path production deployments use — so injected faults and tripped
// breakers never leak into the shared fixtures.
func resilienceSystem(t *testing.T, brk BreakerConfig, hedge HedgeConfig) *System {
	t.Helper()
	base := smallSystem(t)
	idx := DefaultIndexConfig()
	idx.PlanCache = -1
	idx.Shards = 4
	idx.Breaker = brk
	idx.Hedge = hedge
	s, err := NewSystemFromData(base.Network(), base.Dataset(), idx)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestFacadeBreakerTripAndRecovery pins the facade breaker contract: a
// repeatedly failing shard trips its breaker (visible in ShardHealth
// and ResilienceStats), open-breaker queries short-circuit into the
// degraded path, and once the fault clears the half-open probe heals
// the system back to answers bit-identical to the healthy baseline.
func TestFacadeBreakerTripAndRecovery(t *testing.T) {
	s := resilienceSystem(t, BreakerConfig{
		Enabled: true, Window: 8, FailureRatio: 0.5, MinSamples: 2, Cooldown: 50 * time.Millisecond,
	}, HedgeConfig{})
	defer clearChaos(t, s)
	q := testQuery(s)
	req := ReachRequest(Location{Lat: q.Lat, Lng: q.Lng}, 11*time.Hour, 10*time.Minute, 0.2)
	ctx := context.Background()

	healthy, err := s.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}

	if err := s.InjectShardFault(1, ShardFaultError); err != nil {
		t.Fatal(err)
	}
	opened := false
	for i := 0; i < 10 && !opened; i++ {
		if _, err := s.Do(ctx, req, WithPartialResults(true)); err != nil {
			t.Fatalf("partial-mode Do failed outright: %v", err)
		}
		opened = s.ShardHealth()[1].Breaker == "open"
	}
	if !opened {
		t.Fatal("breaker never opened under sustained shard failures")
	}

	// Open breaker: the shard is short-circuited, not called — the
	// answer is still served degraded and the counters move.
	got, err := s.Do(ctx, req, WithPartialResults(true))
	if err != nil {
		t.Fatal(err)
	}
	if got.Degraded == nil || len(got.Degraded.MissingShards) != 1 || got.Degraded.MissingShards[0] != 1 {
		t.Fatalf("short-circuited answer degradation = %+v, want missing shard 1", got.Degraded)
	}
	rs := s.ResilienceStats()
	if rs.BreakerOpens == 0 || rs.BreakerShortCircuits == 0 {
		t.Fatalf("resilience stats = %+v, want opens and short-circuits", rs)
	}

	// Fault cleared + cooldown elapsed: the probe closes the breaker and
	// the next answer is complete and bit-identical to the baseline.
	clearChaos(t, s)
	time.Sleep(60 * time.Millisecond)
	healed, err := s.Do(ctx, req, WithPartialResults(true))
	if err != nil {
		t.Fatal(err)
	}
	if healed.Degraded != nil {
		t.Fatalf("healed answer still degraded: %+v", healed.Degraded)
	}
	if state := s.ShardHealth()[1].Breaker; state != "closed" {
		t.Fatalf("breaker after recovery = %q, want closed", state)
	}
	sameRegion(t, "healed", healed, healthy)
	assertScratchBalanced(t, s, "after breaker trip and recovery")
}

// TestFacadeHedgedQueriesBitIdentical pins hedge determinism end to
// end: with an aggressive trigger every scatter slice races a hedge,
// and whichever attempt commits, answers are bit-identical to an
// unhedged system's — while the losing attempts are cancelled, reaped
// (no goroutine growth; run under -race in CI), and return all their
// pooled scratch.
func TestFacadeHedgedQueriesBitIdentical(t *testing.T) {
	q := testQuery(smallSystem(t))
	req := ReachRequest(Location{Lat: q.Lat, Lng: q.Lng}, 11*time.Hour, 10*time.Minute, 0.2)
	ctx := context.Background()

	plain := resilienceSystem(t, BreakerConfig{}, HedgeConfig{})
	baseline, err := plain.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}

	before := goroutineCount()
	hedged := resilienceSystem(t, BreakerConfig{}, HedgeConfig{
		Enabled: true, Trigger: time.Nanosecond, MaxOutstanding: 4,
	})
	for round := 0; round < 3; round++ {
		got, err := hedged.Do(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		sameRegion(t, "hedged", got, baseline)
	}
	if rs := hedged.ResilienceStats(); rs.HedgesLaunched == 0 {
		t.Fatalf("resilience stats = %+v, want launched hedges", rs)
	}
	assertScratchBalanced(t, hedged, "after hedged queries")
	assertNoGoroutineGrowth(t, before)
}
