package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// runOverload floods a running `streach serve` past its admission limit
// and reports what came back: status counts, latency quantiles, how
// many answers were degraded, and — the overload-protection contract —
// whether any 5xx arrived without a typed error body. The report is
// written as JSON (the BENCH_overload.json artifact CI persists), with
// the server's self-protection gauges scraped from /metrics/prometheus
// appended so the artifact captures breaker and limiter state too.
func runOverload(args []string) error {
	fs := flag.NewFlagSet("overload", flag.ExitOnError)
	base := fs.String("url", "http://localhost:8780", "base URL of a running streach serve")
	path := fs.String("path", "/v1/reach?start=11h&dur=10m&prob=0.2&partial=true", "query path to flood")
	n := fs.Int("n", 200, "total requests")
	c := fs.Int("c", 16, "concurrent clients (open-loop-ish: each fires its next request immediately)")
	reqTimeout := fs.Duration("request-timeout", 10*time.Second, "per-request client timeout")
	out := fs.String("out", "", "write the JSON report to this file as well as stdout")
	failUntyped := fs.Bool("fail-on-untyped-5xx", false, "exit non-zero if any 5xx response lacks a typed error body")
	if err := fs.Parse(args); err != nil {
		return err
	}

	client := &http.Client{Timeout: *reqTimeout}
	var (
		mu        sync.Mutex
		statuses  = map[string]int{}
		latencies []time.Duration
		degraded  int
		untyped   int
		issued    atomic.Int64
		wg        sync.WaitGroup
	)
	began := time.Now()
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for issued.Add(1) <= int64(*n) {
				t0 := time.Now()
				resp, err := client.Get(*base + *path)
				lat := time.Since(t0)
				if err != nil {
					mu.Lock()
					statuses["error"]++
					latencies = append(latencies, lat)
					mu.Unlock()
					continue
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				mu.Lock()
				statuses[strconv.Itoa(resp.StatusCode)]++
				latencies = append(latencies, lat)
				if strings.Contains(string(body), `"degraded":true`) {
					degraded++
				}
				if resp.StatusCode >= 500 && !strings.Contains(string(body), `"code"`) {
					untyped++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(began)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	quant := func(q float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		i := int(q * float64(len(latencies)-1))
		return float64(latencies[i]) / float64(time.Millisecond)
	}
	report := map[string]any{
		"path":        *path,
		"requests":    *n,
		"concurrency": *c,
		"elapsed_s":   elapsed.Seconds(),
		"rps":         float64(*n) / elapsed.Seconds(),
		"statuses":    statuses,
		"degraded":    degraded,
		"untyped_5xx": untyped,
		"latency_ms": map[string]float64{
			"p50": quant(0.50),
			"p90": quant(0.90),
			"p99": quant(0.99),
			"max": quant(1.0),
		},
	}
	if m := scrapeResilienceMetrics(client, *base); len(m) > 0 {
		report["metrics"] = m
	}

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(enc))
	if *out != "" {
		if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "overload: report written to %s\n", *out)
	}
	if *failUntyped && untyped > 0 {
		return fmt.Errorf("overload: %d untyped 5xx responses (want 0)", untyped)
	}
	return nil
}

// scrapeResilienceMetrics pulls the self-protection gauges and counters
// (breaker state, admission limit, hedges, quota rejections) off the
// server's Prometheus endpoint; best-effort, nil on any failure.
func scrapeResilienceMetrics(client *http.Client, base string) map[string]float64 {
	resp, err := client.Get(base + "/metrics/prometheus")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	keep := []string{
		"streach_breaker_state", "streach_breaker_opens_total",
		"streach_breaker_short_circuits_total", "streach_hedges_total",
		"streach_hedge_wins_total", "streach_admission_limit",
		"streach_admission_inflight", "streach_admission_rejected_total",
		"streach_quota_rejections_total", "streach_brownout_warm_shed_total",
		"streach_brownout_forced_partial_total",
	}
	out := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		for _, k := range keep {
			if strings.HasPrefix(line, k) {
				name, val, ok := strings.Cut(line, " ")
				if !ok {
					continue
				}
				if f, err := strconv.ParseFloat(strings.TrimSpace(val), 64); err == nil {
					out[name] = f
				}
			}
		}
	}
	return out
}
