// Command streach builds a synthetic city + taxi fleet, constructs the
// ST-Index and Con-Index, and answers spatio-temporal reachability
// queries or regenerates the paper's evaluation figures.
//
// Usage:
//
//	streach stats  [world flags]
//	streach query  [world flags] -start 11h -dur 10m -prob 0.2 [-lat .. -lng ..] [-alg sqmb|es] [-geojson out.json]
//	               [-precompute] [-dir saved/]   materialise + persist the Con-Index adjacency, or reopen a saved system
//	streach mquery [world flags] -start 11h -dur 10m -prob 0.2 -n 3 [-alg mqmb|seq]
//	streach serve  [world flags] -addr :8780 [-timeout 10s] [-warm-start 11h -warm-dur 1h] [-dir saved/]
//	streach experiment [world flags] -fig all|4.1|4.2|4.3|4.4|4.5|4.6|4.7|4.8a|4.8b|4.9|t4.1|t4.2
//
// World flags (shared): -rows, -cols, -spacing, -reseg, -taxis, -days,
// -seed, -dt. The world is deterministic for a given flag set.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"streach"
	"streach/internal/experiments"
	"streach/internal/roadnet"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "stats":
		err = runStats(args)
	case "query":
		err = runQuery(args)
	case "mquery":
		err = runMQuery(args)
	case "route":
		err = runRoute(args)
	case "gen-gps":
		err = runGenGPS(args)
	case "match":
		err = runMatch(args)
	case "serve":
		err = runServe(args)
	case "ingest":
		err = runIngest(args)
	case "bench":
		err = runBench(args)
	case "overload":
		err = runOverload(args)
	case "experiment":
		err = runExperiment(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "streach: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "streach:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: streach <command> [flags]

commands:
  stats        print the generated world's Table 4.1-style statistics
  query        answer a single-location reachability query (s-query)
  mquery       answer a multi-location reachability query (m-query)
  route        plan a time-dependent route between two busy locations
  gen-gps      simulate a fleet and emit its raw GPS records as CSV
  match        map-match a GPS CSV onto the network, writing a dataset
  serve        serve reachability and route queries over HTTP
               (JSON/GeoJSON /v1/reach, /v1/route, /healthz, /metrics;
               request deadlines propagate into the query engine)
  ingest       map-match a GPS CSV and replay it open-loop against a
               running serve's POST /v1/ingest at a target rate
  bench        offline harnesses; "bench ingest" measures live-ingest
               throughput, merged-read p95, and the compaction pause
  overload     flood a running serve past its admission limit and report
               status mix, latency quantiles, and self-protection metrics
  experiment   regenerate the paper's evaluation tables and figures

run "streach <command> -h" for command flags`)
}

// worldFlags registers the shared world-sizing flags.
type worldFlags struct {
	rows, cols  int
	spacing     float64
	reseg       float64
	taxis, days int
	seed        int64
	slotSecs    int
}

func addWorldFlags(fs *flag.FlagSet) *worldFlags {
	w := &worldFlags{}
	fs.IntVar(&w.rows, "rows", 12, "arterial grid rows")
	fs.IntVar(&w.cols, "cols", 12, "arterial grid columns")
	fs.Float64Var(&w.spacing, "spacing", 1000, "arterial block size in metres")
	fs.Float64Var(&w.reseg, "reseg", 500, "re-segmentation granularity in metres (0 = off)")
	fs.IntVar(&w.taxis, "taxis", 150, "fleet size")
	fs.IntVar(&w.days, "days", 30, "days of trajectories")
	fs.Int64Var(&w.seed, "seed", 7, "world seed")
	fs.IntVar(&w.slotSecs, "dt", 300, "index granularity Δt in seconds")
	return w
}

func (w *worldFlags) config() experiments.Config {
	return experiments.Config{
		CityRows: w.rows, CityCols: w.cols,
		SpacingMeters:   w.spacing,
		ResegmentMeters: w.reseg,
		Taxis:           w.taxis,
		Days:            w.days,
		Seed:            w.seed,
	}
}

func (w *worldFlags) build() (*experiments.World, error) {
	fmt.Fprintf(os.Stderr, "building world: %dx%d city, %d taxis x %d days (seed %d)...\n",
		w.rows, w.cols, w.taxis, w.days, w.seed)
	t0 := time.Now()
	world, err := experiments.BuildWorld(w.config())
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "world ready in %.1fs\n", time.Since(t0).Seconds())
	return world, nil
}

// buildNetworkOnly regenerates the deterministic road network from the
// world flags without simulating a fleet.
func buildNetworkOnly(wf *worldFlags) (net *roadnet.Network, err error) {
	return streach.BuildCity(streach.CityConfig{
		OriginLat: 22.45, OriginLng: 113.90,
		Rows: wf.rows, Cols: wf.cols,
		SpacingMeters:   wf.spacing,
		LocalFraction:   0.4,
		ResegmentMeters: wf.reseg,
		Seed:            wf.seed,
	})
}

func runStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	wf := addWorldFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	world, err := wf.build()
	if err != nil {
		return err
	}
	if err := experiments.Table41(os.Stdout, world); err != nil {
		return err
	}
	experiments.Table42(os.Stdout)
	return nil
}

func runQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	wf := addWorldFlags(fs)
	lat := fs.Float64("lat", 0, "query latitude (0 = busiest segment)")
	lng := fs.Float64("lng", 0, "query longitude")
	start := fs.Duration("start", 11*time.Hour, "start time of day T")
	dur := fs.Duration("dur", 10*time.Minute, "duration L")
	prob := fs.Float64("prob", 0.2, "reachability probability threshold")
	alg := fs.String("alg", "sqmb", "algorithm: sqmb (SQMB+TBS) or es (exhaustive)")
	geojson := fs.String("geojson", "", "write the region as GeoJSON to this file")
	htmlOut := fs.String("html", "", "write the region as a Leaflet HTML map to this file")
	dir := fs.String("dir", "", "system save directory: reopened when it holds a saved system, written after -precompute")
	precompute := fs.Bool("precompute", false, "materialise the Con-Index adjacency for the query window (parallel) and persist it with -dir")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sys, err := loadOrBuildSystem(wf, *dir, *precompute, *start, *dur)
	if err != nil {
		return err
	}
	loc := streach.Location{Lat: *lat, Lng: *lng}
	if *lat == 0 && *lng == 0 {
		loc = sys.BusiestLocation(*start)
		fmt.Fprintf(os.Stderr, "using busiest location (%.5f, %.5f)\n", loc.Lat, loc.Lng)
	}
	q := streach.Query{Lat: loc.Lat, Lng: loc.Lng, Start: *start, Duration: *dur, Prob: *prob}

	var region *streach.Region
	switch strings.ToLower(*alg) {
	case "sqmb":
		region, err = sys.Reach(q)
	case "es":
		region, err = sys.ReachES(q)
	default:
		return fmt.Errorf("unknown algorithm %q", *alg)
	}
	if err != nil {
		return err
	}
	printRegion(region)
	if *geojson != "" {
		gj, err := region.GeoJSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*geojson, []byte(gj), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d features)\n", *geojson, len(region.SegmentIDs))
	}
	if *htmlOut != "" {
		page, err := region.LeafletHTML(fmt.Sprintf("Prob-reachable region (T=%v, L=%v, Prob=%.0f%%)", *start, *dur, *prob*100))
		if err != nil {
			return err
		}
		if err := os.WriteFile(*htmlOut, []byte(page), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *htmlOut)
	}
	return nil
}

func runRoute(args []string) error {
	fs := flag.NewFlagSet("route", flag.ExitOnError)
	wf := addWorldFlags(fs)
	depart := fs.Duration("depart", 8*time.Hour, "departure time of day")
	if err := fs.Parse(args); err != nil {
		return err
	}
	world, err := wf.build()
	if err != nil {
		return err
	}
	sys, err := world.System(wf.slotSecs)
	if err != nil {
		return err
	}
	locs, err := world.MultiQueryLocations(2, *depart)
	if err != nil {
		return err
	}
	from, to := locs[0], locs[1]
	fmt.Fprintf(os.Stderr, "route: (%.5f, %.5f) -> (%.5f, %.5f)\n", from.Lat, from.Lng, to.Lat, to.Lng)
	td, err := sys.Route(from, to, *depart)
	if err != nil {
		return err
	}
	ff, err := sys.RouteFreeFlow(from, to)
	if err != nil {
		return err
	}
	fmt.Printf("time-dependent @ %v: %v over %.1f km (%d segments)\n",
		*depart, td.TravelTime.Round(time.Second), td.DistanceKm, len(td.SegmentIDs))
	fmt.Printf("free-flow (static):   %v over %.1f km (%d segments)\n",
		ff.TravelTime.Round(time.Second), ff.DistanceKm, len(ff.SegmentIDs))
	return nil
}

func runMQuery(args []string) error {
	fs := flag.NewFlagSet("mquery", flag.ExitOnError)
	wf := addWorldFlags(fs)
	n := fs.Int("n", 3, "number of query locations (busy, mutually distant)")
	start := fs.Duration("start", 11*time.Hour, "start time of day T")
	dur := fs.Duration("dur", 10*time.Minute, "duration L")
	prob := fs.Float64("prob", 0.2, "reachability probability threshold")
	alg := fs.String("alg", "mqmb", "algorithm: mqmb (MQMB+TBS) or seq (n x SQMB+TBS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	world, err := wf.build()
	if err != nil {
		return err
	}
	sys, err := world.System(wf.slotSecs)
	if err != nil {
		return err
	}
	locs, err := world.MultiQueryLocations(*n, *start)
	if err != nil {
		return err
	}
	for i, l := range locs {
		fmt.Fprintf(os.Stderr, "location %d: (%.5f, %.5f)\n", i+1, l.Lat, l.Lng)
	}
	var region *streach.Region
	switch strings.ToLower(*alg) {
	case "mqmb":
		region, err = sys.ReachMulti(locs, *start, *dur, *prob)
	case "seq":
		region, err = sys.ReachMultiSequential(locs, *start, *dur, *prob)
	default:
		return fmt.Errorf("unknown algorithm %q", *alg)
	}
	if err != nil {
		return err
	}
	printRegion(region)
	return nil
}

// loadOrBuildSystem resolves the query system: reopen a saved directory
// when one is present, otherwise build the world from flags; with
// precompute, warm the Con-Index adjacency for the query window on all
// cores and (when dir is set) persist the system including the warmed
// adjacency blob.
func loadOrBuildSystem(wf *worldFlags, dir string, precompute bool, start, dur time.Duration) (*streach.System, error) {
	if dir != "" && !precompute {
		if _, err := os.Stat(filepath.Join(dir, "network.bin")); err == nil {
			fmt.Fprintf(os.Stderr, "reopening saved system in %s...\n", dir)
			t0 := time.Now()
			sys, err := streach.OpenSystem(dir, streach.DefaultIndexConfig())
			if err != nil {
				return nil, err
			}
			stats := sys.Engine().ConIndex().Stats()
			fmt.Fprintf(os.Stderr, "system open in %.2fs (%d adjacency rows restored)\n",
				time.Since(t0).Seconds(), stats.Loaded)
			return sys, nil
		}
	}
	world, err := wf.build()
	if err != nil {
		return nil, err
	}
	sys, err := world.System(wf.slotSecs)
	if err != nil {
		return nil, err
	}
	if precompute {
		t0 := time.Now()
		sys.Warm(start, dur)
		stats := sys.Engine().ConIndex().Stats()
		fmt.Fprintf(os.Stderr, "precomputed %d adjacency rows in %.2fs\n",
			stats.Materialised, time.Since(t0).Seconds())
		if dir != "" {
			t0 = time.Now()
			if err := sys.Save(dir); err != nil {
				return nil, err
			}
			fmt.Fprintf(os.Stderr, "saved system (with adjacency) to %s in %.2fs\n",
				dir, time.Since(t0).Seconds())
		}
	}
	return sys, nil
}

func printRegion(r *streach.Region) {
	fmt.Printf("Prob-reachable region: %d segments, %.1f km of road\n",
		len(r.SegmentIDs), r.RoadKm)
	fmt.Printf("processing: %v, %d segments verified, %d page reads, %d pool hits\n",
		r.Metrics.Elapsed, r.Metrics.Evaluated, r.Metrics.PageReads, r.Metrics.PageHits)
	if r.Metrics.Bound+r.Metrics.Verify > 0 {
		fmt.Printf("phase split: bound %v, verify %v\n", r.Metrics.Bound, r.Metrics.Verify)
	}
	if r.Metrics.ConHits+r.Metrics.ConMaterialised > 0 {
		fmt.Printf("con-index adjacency: %d hits, %d materialised\n",
			r.Metrics.ConHits, r.Metrics.ConMaterialised)
	}
	if r.Metrics.TLCacheHits+r.Metrics.TLCacheMisses > 0 {
		fmt.Printf("time-list cache: %d hits, %d misses\n",
			r.Metrics.TLCacheHits, r.Metrics.TLCacheMisses)
	}
	if r.Metrics.MaxRegion > 0 {
		fmt.Printf("bounding regions: max %d, min %d segments\n",
			r.Metrics.MaxRegion, r.Metrics.MinRegion)
	}
}

func runExperiment(args []string) error {
	fs := flag.NewFlagSet("experiment", flag.ExitOnError)
	wf := addWorldFlags(fs)
	fig := fs.String("fig", "all", "figure/table id: all, 4.1 .. 4.9, t4.1, t4.2")
	if err := fs.Parse(args); err != nil {
		return err
	}
	world, err := wf.build()
	if err != nil {
		return err
	}
	out := os.Stdout
	want := func(id string) bool { return *fig == "all" || *fig == id }

	if want("t4.1") {
		if err := experiments.Table41(out, world); err != nil {
			return err
		}
	}
	if want("t4.2") {
		experiments.Table42(out)
	}
	if want("4.1") {
		rows, err := experiments.Fig41(world)
		if err != nil {
			return err
		}
		experiments.PrintFig41(out, rows)
	}
	if want("4.2") {
		rows, err := experiments.Fig42(world)
		if err != nil {
			return err
		}
		experiments.PrintFig42(out, rows)
	}
	if want("4.3") {
		rows, err := experiments.Fig43(world)
		if err != nil {
			return err
		}
		experiments.PrintFig43(out, rows)
	}
	if want("4.4") {
		rows, err := experiments.Fig44(world)
		if err != nil {
			return err
		}
		experiments.PrintFig44(out, rows)
	}
	if want("4.5") {
		rows, err := experiments.Fig45(world)
		if err != nil {
			return err
		}
		experiments.PrintFig45(out, rows)
	}
	if want("4.6") {
		rows, err := experiments.Fig46(world)
		if err != nil {
			return err
		}
		experiments.PrintFig46(out, rows)
	}
	if want("4.7") {
		rows, err := experiments.Fig47(world)
		if err != nil {
			return err
		}
		experiments.PrintFig47(out, rows)
	}
	if want("4.8a") {
		rows, err := experiments.Fig48a(world)
		if err != nil {
			return err
		}
		experiments.PrintFig48a(out, rows)
	}
	if want("4.8b") {
		rows, err := experiments.Fig48b(world, 10)
		if err != nil {
			return err
		}
		experiments.PrintFig48b(out, rows)
	}
	if want("4.9") {
		res, err := experiments.Fig49(world)
		if err != nil {
			return err
		}
		experiments.PrintFig49(out, res)
	}
	return nil
}
