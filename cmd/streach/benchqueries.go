package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

// benchSpec is one concrete HTTP request a template expands to. shape
// identifies the query shape (the plan-cache axis): requests sharing a
// shape share a plan, so the first request per shape is the cold sample
// and the rest measure warm serving.
type benchSpec struct {
	shape  string
	method string
	path   string
	body   []byte
}

// benchTemplate is a named query mix: reach/reverse/multi, narrow or
// wide windows, duplicate-heavy (every request the same shape — the
// steady-traffic case plan caching serves) or all-distinct (every
// request a fresh shape — the worst case that measures cold planning).
type benchTemplate struct {
	name   string
	expand func(n int) []benchSpec
}

// benchTemplates builds the scenario set. Multi templates need real
// coordinates (the server snaps them to segments), so they are built
// from locations probed out of a live reach answer and skipped when the
// probe cannot supply enough.
func benchTemplates(locs [][2]float64) []benchTemplate {
	reachPath := func(start, dur string, reverse bool) string {
		p := fmt.Sprintf("/v1/reach?start=%s&dur=%s&prob=0.2", start, dur)
		if reverse {
			p += "&reverse=1"
		}
		return p
	}
	dup := func(name, start, dur string, reverse bool) benchTemplate {
		return benchTemplate{name: name, expand: func(n int) []benchSpec {
			path := reachPath(start, dur, reverse)
			specs := make([]benchSpec, n)
			for i := range specs {
				specs[i] = benchSpec{shape: path, method: http.MethodGet, path: path}
			}
			return specs
		}}
	}
	// Distinct mixes shift the start time one minute per shape: every
	// request a distinct group key, so none shares a plan.
	distinct := func(name, dur string, baseMin int, reverse bool) benchTemplate {
		return benchTemplate{name: name, expand: func(n int) []benchSpec {
			specs := make([]benchSpec, n)
			for i := range specs {
				path := reachPath(fmt.Sprintf("%dm", baseMin+i), dur, reverse)
				specs[i] = benchSpec{shape: path, method: http.MethodGet, path: path}
			}
			return specs
		}}
	}
	ts := []benchTemplate{
		dup("reach-narrow-dup", "8h30m", "8m", false),
		dup("reach-wide-dup", "8h30m", "45m", false),
		distinct("reach-narrow-distinct", "8m", 8*60, false),
		dup("reverse-narrow-dup", "17h30m", "8m", true),
		distinct("reverse-wide-distinct", "45m", 17*60, true),
	}
	if len(locs) >= 2 {
		body, _ := json.Marshal(map[string]any{
			"locations": []map[string]float64{
				{"lat": locs[0][0], "lng": locs[0][1]},
				{"lat": locs[1][0], "lng": locs[1][1]},
			},
			"start": "9h", "dur": "10m", "prob": 0.2,
		})
		ts = append(ts, benchTemplate{name: "multi-dup", expand: func(n int) []benchSpec {
			specs := make([]benchSpec, n)
			for i := range specs {
				specs[i] = benchSpec{shape: "multi|9h|10m", method: http.MethodPost, path: "/v1/reach", body: body}
			}
			return specs
		}})
	}
	return ts
}

// runBenchQueries replays the named query templates against a running
// `streach serve` and writes BENCH_queries.json: per-template and
// overall p50/p95/p99, SLO attainment, and the cold tail (the first
// request of every distinct shape — the latency the warm-plan pipeline
// exists to cut). With -baseline it appends the p95 and cold-p99 ratios
// against a prior report, so one artifact carries the comparison.
func runBenchQueries(args []string) error {
	fs := flag.NewFlagSet("bench queries", flag.ExitOnError)
	base := fs.String("url", "http://localhost:8780", "base URL of a running streach serve")
	n := fs.Int("n", 40, "requests per template")
	c := fs.Int("c", 4, "concurrent clients per template")
	slo := fs.Duration("slo", 250*time.Millisecond, "latency SLO for the attainment ratio")
	reqTimeout := fs.Duration("request-timeout", 15*time.Second, "per-request client timeout")
	out := fs.String("out", "BENCH_queries.json", "output JSON path (empty = stdout only)")
	baseline := fs.String("baseline", "", "prior BENCH_queries.json to compute p95/cold-p99 ratios against")
	label := fs.String("label", "", "free-form label recorded in the report (e.g. warm-plans, cold)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	client := &http.Client{Timeout: *reqTimeout}
	locs, err := probeLocations(client, *base)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench queries: location probe failed (%v): multi templates skipped\n", err)
	}
	templates := benchTemplates(locs)

	type sample struct {
		lat  time.Duration
		cold bool
		err  bool
	}
	quantMS := func(lats []time.Duration, q float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		sorted := append([]time.Duration(nil), lats...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		return float64(sorted[int(q*float64(len(sorted)-1))]) / float64(time.Millisecond)
	}

	var reports []map[string]any
	var allLats, allCold []time.Duration
	var allAttained, allCount, allErrs int
	for _, tpl := range templates {
		specs := tpl.expand(*n)
		samples := make([]sample, len(specs))
		// The first request of each distinct shape is the cold sample:
		// the cold pass issues exactly those first, so a later duplicate
		// always finds whatever plan state the first request left behind,
		// and "cold" stays well-defined under concurrency.
		firstOf := map[string]int{}
		for i, sp := range specs {
			if _, ok := firstOf[sp.shape]; !ok {
				firstOf[sp.shape] = i
			}
		}
		run := func(i int) {
			sp := specs[i]
			t0 := time.Now()
			var resp *http.Response
			var rerr error
			if sp.method == http.MethodPost {
				resp, rerr = client.Post(*base+sp.path, "application/json", bytes.NewReader(sp.body))
			} else {
				resp, rerr = client.Get(*base + sp.path)
			}
			lat := time.Since(t0)
			ok := rerr == nil
			if resp != nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				ok = resp.StatusCode == http.StatusOK
			}
			samples[i] = sample{lat: lat, cold: firstOf[sp.shape] == i, err: !ok}
		}
		runAll := func(list []int) {
			var next int
			var mu sync.Mutex
			var wg sync.WaitGroup
			for w := 0; w < *c; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						mu.Lock()
						i := next
						next++
						mu.Unlock()
						if i >= len(list) {
							return
						}
						run(list[i])
					}
				}()
			}
			wg.Wait()
		}
		var coldList, warmList []int
		for i := range specs {
			if firstOf[specs[i].shape] == i {
				coldList = append(coldList, i)
			} else {
				warmList = append(warmList, i)
			}
		}
		runAll(coldList)
		runAll(warmList)

		var lats, cold []time.Duration
		attained, errs := 0, 0
		for _, s := range samples {
			if s.err {
				errs++
				continue
			}
			lats = append(lats, s.lat)
			if s.cold {
				cold = append(cold, s.lat)
			}
			if s.lat <= *slo {
				attained++
			}
		}
		rep := map[string]any{
			"name":         tpl.name,
			"requests":     len(specs),
			"errors":       errs,
			"shapes":       len(firstOf),
			"p50_ms":       quantMS(lats, 0.50),
			"p95_ms":       quantMS(lats, 0.95),
			"p99_ms":       quantMS(lats, 0.99),
			"cold_p99_ms":  quantMS(cold, 0.99),
			"slo_attained": float64(attained) / float64(max(1, len(samples))),
		}
		reports = append(reports, rep)
		allLats = append(allLats, lats...)
		allCold = append(allCold, cold...)
		allAttained += attained
		allCount += len(samples)
		allErrs += errs
		fmt.Fprintf(os.Stderr, "bench queries: %-24s p50=%.1fms p95=%.1fms p99=%.1fms cold-p99=%.1fms slo=%.0f%%\n",
			tpl.name, rep["p50_ms"], rep["p95_ms"], rep["p99_ms"], rep["cold_p99_ms"],
			100*rep["slo_attained"].(float64))
	}

	report := map[string]any{
		"url":       *base,
		"label":     *label,
		"slo_ms":    float64(*slo) / float64(time.Millisecond),
		"templates": reports,
		"overall": map[string]any{
			"requests":     allCount,
			"errors":       allErrs,
			"p50_ms":       quantMS(allLats, 0.50),
			"p95_ms":       quantMS(allLats, 0.95),
			"p99_ms":       quantMS(allLats, 0.99),
			"cold_p50_ms":  quantMS(allCold, 0.50),
			"cold_p99_ms":  quantMS(allCold, 0.99),
			"slo_attained": float64(allAttained) / float64(max(1, allCount)),
		},
	}
	if m := scrapePlanMetrics(client, *base); len(m) > 0 {
		report["metrics"] = m
	}
	if *baseline != "" {
		if cmp, err := compareBaseline(*baseline, report); err != nil {
			fmt.Fprintf(os.Stderr, "bench queries: baseline %s unusable: %v\n", *baseline, err)
		} else {
			report["vs_baseline"] = cmp
		}
	}

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(enc))
	if *out != "" {
		if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "bench queries: report written to %s\n", *out)
	}
	if allErrs > 0 {
		return fmt.Errorf("bench queries: %d/%d requests failed", allErrs, allCount)
	}
	return nil
}

// probeLocations pulls a couple of real (lat, lng) pairs out of a live
// reach answer's GeoJSON, for the multi-location templates.
func probeLocations(client *http.Client, base string) ([][2]float64, error) {
	resp, err := client.Get(base + "/v1/reach?start=9h&dur=15m&prob=0.2&format=geojson")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("probe status %s", resp.Status)
	}
	var fc struct {
		Features []struct {
			Geometry struct {
				Coordinates [][2]float64 `json:"coordinates"` // lng, lat
			} `json:"geometry"`
		} `json:"features"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&fc); err != nil {
		return nil, err
	}
	var locs [][2]float64
	for _, f := range fc.Features {
		if len(f.Geometry.Coordinates) == 0 {
			continue
		}
		c := f.Geometry.Coordinates[0]
		locs = append(locs, [2]float64{c[1], c[0]}) // back to lat, lng
		if len(locs) == 2 {
			break
		}
	}
	if len(locs) < 2 {
		return nil, fmt.Errorf("only %d usable features", len(locs))
	}
	return locs, nil
}

// scrapePlanMetrics pulls the plan-cache and sharding gauges out of
// /metrics/prometheus so the artifact records how the server served the
// run (warmed plans, cache hit ratio, slot fallbacks).
func scrapePlanMetrics(client *http.Client, base string) map[string]float64 {
	resp, err := client.Get(base + "/metrics/prometheus")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil
	}
	want := map[string]bool{
		"streach_plan_cache_hits":           true,
		"streach_plan_cache_misses":         true,
		"streach_plans_warmed":              true,
		"streach_plans_slot_fallback_total": true,
		"streach_shards":                    true,
		"streach_slot_shards":               true,
	}
	out := map[string]float64{}
	for _, line := range strings.Split(string(body), "\n") {
		name, val, ok := strings.Cut(line, " ")
		if !ok || !want[name] {
			continue
		}
		var f float64
		if _, err := fmt.Sscanf(val, "%g", &f); err == nil {
			out[name] = f
		}
	}
	return out
}

// compareBaseline loads a prior report and computes the ratios the perf
// acceptance criteria are stated in: baseline/current for overall p95
// and cold p99 (> 1 means this run is faster).
func compareBaseline(path string, current map[string]any) (map[string]any, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var prior struct {
		Label   string `json:"label"`
		Overall struct {
			P95      float64 `json:"p95_ms"`
			ColdP99  float64 `json:"cold_p99_ms"`
			Requests int     `json:"requests"`
		} `json:"overall"`
	}
	if err := json.Unmarshal(raw, &prior); err != nil {
		return nil, err
	}
	cur := current["overall"].(map[string]any)
	ratio := func(base, now float64) float64 {
		if now <= 0 {
			return 0
		}
		return base / now
	}
	return map[string]any{
		"file":                 path,
		"baseline_label":       prior.Label,
		"p95_ratio":            ratio(prior.Overall.P95, cur["p95_ms"].(float64)),
		"cold_p99_ratio":       ratio(prior.Overall.ColdP99, cur["cold_p99_ms"].(float64)),
		"baseline_p95_ms":      prior.Overall.P95,
		"baseline_cold_p99_ms": prior.Overall.ColdP99,
	}, nil
}
