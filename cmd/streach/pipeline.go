package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"streach/internal/mapmatch"
	"streach/internal/traj"
)

// The pipeline subcommands expose the thesis's pre-processing flow
// (§3.1) on the command line:
//
//	streach gen-gps -taxis 20 -days 2 -out gps.csv     # simulate raw GPS
//	streach match  -gps gps.csv -out dataset.bin       # map-match onto the network
//
// The matched dataset then feeds NewSystemFromData / OpenSystem.

func runGenGPS(args []string) error {
	fs := flag.NewFlagSet("gen-gps", flag.ExitOnError)
	wf := addWorldFlags(fs)
	out := fs.String("out", "gps.csv", "output CSV path")
	interval := fs.Duration("interval", 30*time.Second, "GPS sampling interval")
	noise := fs.Float64("noise", 15, "GPS noise sigma in metres")
	if err := fs.Parse(args); err != nil {
		return err
	}
	world, err := wf.build()
	if err != nil {
		return err
	}
	var raws []traj.Trajectory
	points := 0
	for i := range world.DS.Matched {
		mt := &world.DS.Matched[i]
		raw := traj.RawFromMatched(world.Net, mt, world.DS.DayStart(mt.Day), *interval, *noise, int64(i))
		if len(raw.Points) == 0 {
			continue
		}
		raws = append(raws, *raw)
		points += len(raw.Points)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := traj.WriteGPSCSV(f, raws); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d trajectories, %d GPS records\n", *out, len(raws), points)
	return nil
}

func runMatch(args []string) error {
	fs := flag.NewFlagSet("match", flag.ExitOnError)
	wf := addWorldFlags(fs)
	in := fs.String("gps", "", "input GPS CSV (required)")
	out := fs.String("out", "dataset.bin", "output matched-dataset path")
	base := fs.String("base", "2014-11-01", "base date (day 0), YYYY-MM-DD")
	days := fs.Int("span", 30, "number of days the dataset spans")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("match: -gps is required")
	}
	baseDate, err := time.Parse("2006-01-02", *base)
	if err != nil {
		return fmt.Errorf("match: parse base date: %w", err)
	}
	// The network must be the same one the queries will run over; it is
	// regenerated deterministically from the world flags.
	net, err := buildNetworkOnly(wf)
	if err != nil {
		return err
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	raws, err := traj.ReadGPSCSV(f, baseDate)
	f.Close()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "map-matching %d trajectories...\n", len(raws))
	matcher := mapmatch.New(net, mapmatch.DefaultConfig())
	ds := &traj.Dataset{BaseDate: baseDate.UTC(), Days: *days}
	matchedVisits := 0
	t0 := time.Now()
	for i := range raws {
		mt, err := matcher.Match(&raws[i])
		if err != nil {
			return fmt.Errorf("match: trajectory %d: %w", i, err)
		}
		if len(mt.Visits) == 0 {
			continue
		}
		ds.Matched = append(ds.Matched, *mt)
		matchedVisits += len(mt.Visits)
	}
	fmt.Fprintf(os.Stderr, "matched in %.1fs\n", time.Since(t0).Seconds())
	g, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer g.Close()
	if err := traj.WriteDataset(g, ds); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d matched trajectories, %d segment visits\n",
		*out, len(ds.Matched), matchedVisits)
	return nil
}
