package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"time"

	"streach"
	"streach/internal/mapmatch"
	"streach/internal/traj"
)

// streach ingest: replay a raw GPS CSV against a running serve's
// POST /v1/ingest, open-loop at a target rate. The CSV is map-matched
// onto the (deterministically regenerated) network first, so the wire
// carries segment-resolved updates — the same pre-processing the offline
// pipeline applies, moved in front of the live endpoint. Open-loop
// means the replayer does not slow down when the server sheds load: a
// 429 counts the batch shed and the clock keeps running, which is what
// makes the achieved-rate number honest.
func runIngest(args []string) error {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	wf := addWorldFlags(fs)
	url := fs.String("url", "http://localhost:8780", "base URL of a running streach serve")
	gps := fs.String("gps", "", "input GPS CSV to replay (required; see gen-gps)")
	base := fs.String("base", "2014-11-01", "base date (day 0), YYYY-MM-DD")
	rate := fs.Float64("rate", 2000, "target updates/second (open loop)")
	batch := fs.Int("batch", 256, "updates per POST")
	wait := fs.Bool("wait", false, "ask the server to fold each batch before answering (?wait=1)")
	compact := fs.Bool("compact", false, "trigger a delta compaction after the replay")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *gps == "" {
		return fmt.Errorf("ingest: -gps is required")
	}
	baseDate, err := time.Parse("2006-01-02", *base)
	if err != nil {
		return fmt.Errorf("ingest: parse base date: %w", err)
	}
	net, err := buildNetworkOnly(wf)
	if err != nil {
		return err
	}
	f, err := os.Open(*gps)
	if err != nil {
		return err
	}
	raws, err := traj.ReadGPSCSV(f, baseDate)
	f.Close()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "map-matching %d trajectories...\n", len(raws))
	matcher := mapmatch.New(net, mapmatch.DefaultConfig())
	var updates []wireUpdate
	for i := range raws {
		mt, err := matcher.Match(&raws[i])
		if err != nil {
			return fmt.Errorf("ingest: trajectory %d: %w", i, err)
		}
		for _, v := range mt.Visits {
			updates = append(updates, wireUpdate{
				Taxi: int32(mt.Taxi), Day: int(mt.Day), Seg: int32(v.Segment),
				EnterMs: v.EnterMs, ExitMs: v.ExitMs, SpeedMps: v.Speed,
			})
		}
	}
	if len(updates) == 0 {
		return fmt.Errorf("ingest: no visits matched")
	}
	fmt.Fprintf(os.Stderr, "replaying %d updates at %.0f/s...\n", len(updates), *rate)

	client := &http.Client{Timeout: 30 * time.Second}
	endpoint := *url + "/v1/ingest"
	if *wait {
		endpoint += "?wait=1"
	}
	interval := time.Duration(float64(*batch) / *rate * float64(time.Second))
	tick := time.NewTicker(interval)
	defer tick.Stop()
	var sent, accepted, shed int
	began := time.Now()
	for off := 0; off < len(updates); off += *batch {
		end := off + *batch
		if end > len(updates) {
			end = len(updates)
		}
		n, err := postIngest(client, endpoint, updates[off:end])
		if err != nil {
			return err
		}
		sent += end - off
		accepted += n
		shed += (end - off) - n
		if end < len(updates) {
			<-tick.C
		}
	}
	elapsed := time.Since(began)
	fmt.Printf("sent %d updates in %.2fs (%.0f/s achieved): %d accepted, %d shed\n",
		sent, elapsed.Seconds(), float64(sent)/elapsed.Seconds(), accepted, shed)
	if *compact {
		resp, err := client.Post(*url+"/v1/ingest/compact", "application/json", nil)
		if err != nil {
			return err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		fmt.Printf("compaction: %s\n", bytes.TrimSpace(body))
	}
	return nil
}

// wireUpdate mirrors the serve layer's JSON update shape.
type wireUpdate struct {
	Taxi     int32   `json:"taxi"`
	Day      int     `json:"day"`
	Seg      int32   `json:"seg"`
	EnterMs  int32   `json:"enter_ms"`
	ExitMs   int32   `json:"exit_ms"`
	SpeedMps float32 `json:"speed_mps"`
}

// postIngest POSTs one batch and returns how many updates the server
// accepted. A 429 is not an error — it is the backpressure contract —
// and partial acceptance is read out of the response body.
func postIngest(client *http.Client, endpoint string, batch []wireUpdate) (int, error) {
	body, err := json.Marshal(map[string]any{"updates": batch})
	if err != nil {
		return 0, err
	}
	resp, err := client.Post(endpoint, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var ack struct {
		Accepted int    `json:"accepted"`
		Error    string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		return 0, fmt.Errorf("ingest: bad response (%s): %v", resp.Status, err)
	}
	switch resp.StatusCode {
	case http.StatusOK, http.StatusTooManyRequests:
		return ack.Accepted, nil
	}
	return 0, fmt.Errorf("ingest: %s: %s", resp.Status, ack.Error)
}

// runBench dispatches the bench modes ("streach bench ingest",
// "streach bench queries").
func runBench(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("bench: usage: streach bench ingest|queries [flags]")
	}
	switch args[0] {
	case "ingest":
		return runBenchIngest(args[1:])
	case "queries":
		return runBenchQueries(args[1:])
	}
	return fmt.Errorf("bench: unknown mode %q (want ingest or queries)", args[0])
}

// runBenchIngest measures the live-ingestion subsystem in process and
// writes BENCH_ingest.json: sustained insert throughput, the merged-read
// query p95 against the base-only p95 (the delta-layer read overhead),
// and the compaction pause. The read probes are full reach queries over
// distinct start times with the plan cache off, so the delta merge, the
// decoded-list cache invalidation, and the speed-bound recomputes are
// all on the measured path.
func runBenchIngest(args []string) error {
	fs := flag.NewFlagSet("bench ingest", flag.ExitOnError)
	wf := addWorldFlags(fs)
	out := fs.String("out", "BENCH_ingest.json", "output JSON path")
	rate := fs.Float64("rate", 5000, "target ingest rate in updates/second")
	dur := fs.Duration("ingest-dur", 2*time.Second, "how long to sustain the ingest load")
	queries := fs.Int("queries", 40, "read probes per phase")
	prob := fs.Float64("prob", 0.2, "probe probability threshold")
	window := fs.Duration("window", 10*time.Minute, "probe window L")
	compactKeys := fs.Int("compact-keys", 0, "per-cycle dirty-key cap for the incremental compaction phase (0 = dirty/4, min 64)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	fmt.Fprintf(os.Stderr, "bench ingest: building world (%d taxis x %d days)...\n", wf.taxis, wf.days)
	sys, err := streach.NewSystem(
		streach.CityConfig{
			OriginLat: 22.45, OriginLng: 113.90,
			Rows: wf.rows, Cols: wf.cols,
			SpacingMeters: wf.spacing, LocalFraction: 0.4,
			ResegmentMeters: wf.reseg, Seed: wf.seed,
		},
		streach.FleetConfig{Taxis: wf.taxis, Days: wf.days, Seed: wf.seed + 1},
		streach.IndexConfig{SlotSeconds: wf.slotSecs, PlanCache: -1},
	)
	if err != nil {
		return err
	}
	defer sys.Close()
	if err := sys.StartIngest(streach.IngestConfig{}); err != nil {
		return err
	}
	numSegments := sys.Network().NumSegments()

	// Probe set: one busy location, distinct start times spread over an
	// hour so every probe bounds and verifies for itself.
	loc := sys.BusiestLocation(11 * time.Hour)
	type probeLats struct {
		total, bound, verify []time.Duration
		conMaterialised      int64
	}
	probe := func() (probeLats, error) {
		var lats probeLats
		for i := 0; i < *queries; i++ {
			start := 11*time.Hour + time.Duration(i)*90*time.Second
			t0 := time.Now()
			reg, err := sys.Do(context.Background(),
				streach.ReachRequest(loc, start, *window, *prob))
			if err != nil {
				return probeLats{}, err
			}
			lats.total = append(lats.total, time.Since(t0))
			lats.bound = append(lats.bound, reg.Metrics.Bound)
			lats.verify = append(lats.verify, reg.Metrics.Verify)
			lats.conMaterialised += reg.Metrics.ConMaterialised
		}
		return lats, nil
	}
	p95ms := func(lats []time.Duration) float64 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		return float64(lats[int(0.95*float64(len(lats)-1))]) / float64(time.Millisecond)
	}

	// Warm pass (Con-Index rows, buffer pool), then the base measurement.
	if _, err := probe(); err != nil {
		return err
	}
	baseLats, err := probe()
	if err != nil {
		return err
	}
	baseP95 := p95ms(baseLats.total)

	// Sustained open-loop ingest on a background goroutine: synthetic
	// updates over real segments, fresh taxi IDs (a live fleet joining
	// the historical one), speeds near free flow.
	var accepted, shed int64
	var ingestElapsed time.Duration
	ingestDone := make(chan struct{})
	go func() {
		defer close(ingestDone)
		rng := rand.New(rand.NewSource(wf.seed + 99))
		const benchBatch = 256
		batch := make([]streach.IngestUpdate, 0, benchBatch)
		interval := time.Duration(float64(benchBatch) / *rate * float64(time.Second))
		tick := time.NewTicker(interval)
		defer tick.Stop()
		began := time.Now()
		for time.Since(began) < *dur {
			batch = batch[:0]
			for i := 0; i < benchBatch; i++ {
				enter := int32(rng.Intn(86_000_000))
				batch = append(batch, streach.IngestUpdate{
					TaxiID:    int32(wf.taxis + rng.Intn(1000)),
					Day:       rng.Intn(wf.days),
					SegmentID: int32(rng.Intn(numSegments)),
					EnterMs:   enter,
					ExitMs:    enter + 5000 + int32(rng.Intn(30000)),
					SpeedMps:  6 + 8*rng.Float32(),
				})
			}
			n, err := sys.TryIngest(batch)
			accepted += int64(n)
			if err != nil {
				shed += int64(len(batch) - n)
			}
			<-tick.C
		}
		ingestElapsed = time.Since(began)
	}()

	// Merged reads, measured concurrently with the ingest load and with
	// the same warm-then-measure discipline as the base pass: a quarter
	// of the load runs first so a real delta depth has accumulated, the
	// warm pass repopulates the keys the burst invalidated, and the
	// measured pass then pays re-merges only for keys live appends keep
	// invalidating under it — the steady state an operator actually sees
	// between compactions.
	time.Sleep(*dur / 4)
	if _, err := probe(); err != nil {
		return err
	}
	mergedLats, err := probe()
	if err != nil {
		return err
	}
	mergedP95 := p95ms(mergedLats.total)
	<-ingestDone
	if err := sys.FlushIngest(context.Background()); err != nil {
		return err
	}
	preStats := sys.IngestStats()

	// Incremental compaction: drain the accumulated delta in budgeted
	// cycles instead of one stop-the-world fold. The per-cycle cap is
	// deliberately smaller than the dirty-key backlog, so the measurement
	// exercises the roll-forward path: each install pause is bounded by
	// the cap, not by the backlog — the property that keeps a live server
	// responsive while a deep delta drains.
	cap0 := *compactKeys
	if cap0 <= 0 {
		cap0 = preStats.DirtyKeys / 4
		if cap0 < 64 {
			cap0 = 64
		}
	}
	type cycleStat struct {
		Keys      int     `json:"keys"`
		PauseMs   float64 `json:"pause_ms"`
		Remaining int     `json:"remaining"`
	}
	var cycles []cycleStat
	var cres streach.CompactResult
	var totKeys int
	var totObs, totBytes int64
	var maxPause time.Duration
	for {
		res, err := sys.CompactIngestN(context.Background(), cap0)
		if err != nil {
			return err
		}
		cres = res
		totKeys += res.Keys
		totObs += res.Observations
		totBytes += res.Bytes
		if res.Pause > maxPause {
			maxPause = res.Pause
		}
		cycles = append(cycles, cycleStat{
			Keys:      res.Keys,
			PauseMs:   float64(res.Pause) / float64(time.Millisecond),
			Remaining: res.Remaining,
		})
		if res.Remaining == 0 {
			break
		}
	}

	// Post-compaction reads answer from the freshly encoded blobs (the
	// warm pass re-reads the keys the ingest tail invalidated after the
	// merged measurement).
	if _, err := probe(); err != nil {
		return err
	}
	postLats, err := probe()
	if err != nil {
		return err
	}

	report := map[string]any{
		"world": map[string]any{
			"segments":     numSegments,
			"taxis":        wf.taxis,
			"days":         wf.days,
			"slot_seconds": wf.slotSecs,
		},
		"ingest": map[string]any{
			"target_rate":   *rate,
			"achieved_rate": float64(accepted) / ingestElapsed.Seconds(),
			"accepted":      accepted,
			"shed":          shed,
			"applied":       preStats.Applied,
			"dropped":       preStats.Dropped,
			"pending_obs":   preStats.PendingObs,
			"dirty_keys":    preStats.DirtyKeys,
		},
		"reads": map[string]any{
			"queries_per_phase":       *queries,
			"base_p95_ms":             baseP95,
			"merged_p95_ms":           mergedP95,
			"post_compact_p95_ms":     p95ms(postLats.total),
			"merged_overhead_pct":     (mergedP95/baseP95 - 1) * 100,
			"base_bound_p95_ms":       p95ms(baseLats.bound),
			"base_verify_p95_ms":      p95ms(baseLats.verify),
			"merged_bound_p95_ms":     p95ms(mergedLats.bound),
			"merged_verify_p95_ms":    p95ms(mergedLats.verify),
			"base_con_materialised":   baseLats.conMaterialised,
			"merged_con_materialised": mergedLats.conMaterialised,
		},
		"compaction": map[string]any{
			"keys":         totKeys,
			"observations": totObs,
			"bytes":        totBytes,
			"epoch":        cres.Epoch,
			"incremental": map[string]any{
				"key_cap":      cap0,
				"dirty_keys":   preStats.DirtyKeys,
				"cycles":       len(cycles),
				"max_pause_ms": float64(maxPause) / float64(time.Millisecond),
				"per_cycle":    cycles,
			},
		},
	}
	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(enc))
	if *out != "" {
		if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "bench ingest: report written to %s\n", *out)
	}
	return nil
}
