package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"streach"
	"streach/internal/serve"
)

// runServe builds (or reopens) a query system and serves it over HTTP:
// JSON/GeoJSON reachability queries on /v1/reach, route planning on
// /v1/route, liveness on /healthz, and cumulative query metrics on
// /metrics. Request deadlines (-timeout, client ?timeout=, capped by
// -max-timeout) map straight onto the query contexts, so a slow query is
// abandoned at the deadline instead of holding the worker pool.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	wf := addWorldFlags(fs)
	addr := fs.String("addr", ":8780", "listen address")
	timeout := fs.Duration("timeout", 10*time.Second, "default per-request query deadline")
	maxTimeout := fs.Duration("max-timeout", 30*time.Second, "cap on client-requested ?timeout=")
	maxInFlight := fs.Int("max-inflight", 0, "adaptive admission ceiling: max concurrent query requests, 429 beyond (0 = default 64, negative = unlimited)")
	minInFlight := fs.Int("min-inflight", 0, "adaptive admission floor: overload never shrinks the limit below this (0 = max/4)")
	staticAdmission := fs.Bool("static-admission", false, "disable AIMD adaptation: keep the in-flight bound fixed at -max-inflight")
	clientRPS := fs.Float64("client-rps", 0, "per-client token-bucket quota in requests/second, keyed by X-API-Key or peer host (0 = off)")
	clientBurst := fs.Int("client-burst", 0, "per-client quota burst depth (0 = 2x -client-rps)")
	breakers := fs.Bool("breakers", false, "per-shard circuit breakers: short-circuit a repeatedly failing shard instead of paying its budget every query (requires -shards)")
	breakerCooldown := fs.Duration("breaker-cooldown", 0, "open-breaker cooldown before a half-open probe (0 = default 2s)")
	breakerRatio := fs.Float64("breaker-ratio", 0, "failure ratio over the rolling window that trips a breaker (0 = default 0.5)")
	hedge := fs.Bool("hedge", false, "hedged shard verification: race a slow shard's verify slice with a second attempt, first result wins (requires -shards)")
	hedgeAfter := fs.Duration("hedge-after", 0, "hedge trigger latency floor (0 = default 25ms; effective trigger also tracks 2x shard p95)")
	shards := fs.Int("shards", 0, "sharded execution: partition the network across this many engines and answer by scatter-gather (0/1 = single engine; results are bit-identical)")
	slotShards := fs.Int("slot-shards", 0, "temporal sharding: cut the day's slot axis into this many density-balanced ranges, one shard row each, routing queries by window start; composes with -shards into grid x slots (0/1 = off; results are bit-identical)")
	warmPlans := fs.Int("warm-plans", 0, "warm-plan pipeline: re-plan this many of the hottest recorded query shapes in the background after open and after each compaction epoch swap; grows the plan cache to hold them (0 = off)")
	shardBudget := fs.Duration("shard-budget", 0, "per-shard deadline budget: a shard slower than this fails (typed Timeout) or is skipped under ?partial=true (0 = no budget)")
	chaos := fs.String("chaos", "", "DEV ONLY fault injection: comma-separated shard=N:error|panic|hang items, e.g. shard=1:error,shard=2:hang (requires -shards)")
	accessLog := fs.Bool("access-log", false, "log one line per request (method, URI, status, latency, request ID) to stderr")
	ingestOn := fs.Bool("ingest", false, "enable live ingestion: POST /v1/ingest accepts position updates, /v1/ingest/compact folds the delta layer")
	compactEvery := fs.Duration("compact-every", 0, "background incremental compaction period (0 = manual compaction only)")
	compactKeys := fs.Int("compact-keys", 0, "dirty keys folded per background cycle; the rest roll forward (0 = default 4096)")
	compactBudget := fs.Duration("compact-pause-budget", 0, "install-pause budget the background loop adapts its per-cycle key cap toward (0 = no adaptation)")
	warmStart := fs.Duration("warm-start", 0, "precompute the Con-Index adjacency from this time of day (with -warm-dur)")
	warmDur := fs.Duration("warm-dur", 0, "warm window length (0 = skip warming)")
	dir := fs.String("dir", "", "system save directory: reopened when it holds a saved system")
	if err := fs.Parse(args); err != nil {
		return err
	}

	sys, err := loadOrBuildSystem(wf, *dir, false, 0, 0)
	if err != nil {
		return err
	}
	defer sys.Close()
	if *shardBudget > 0 {
		sys.SetShardBudget(*shardBudget)
	}
	if *shards > 1 || *slotShards > 1 {
		gridK := *shards
		if gridK < 1 {
			gridK = 1
		}
		if err := sys.ShardSlots(gridK, *slotShards); err != nil {
			return err
		}
		if sys.SlotShards() > 1 {
			fmt.Fprintf(os.Stderr, "sharded execution: %d partitioned engines (%d slot rows x %d grid shards)\n",
				sys.Shards(), sys.SlotShards(), sys.Shards()/sys.SlotShards())
		} else {
			fmt.Fprintf(os.Stderr, "sharded execution: %d partitioned engines\n", sys.Shards())
		}
	}
	if *breakers {
		if sys.Shards() <= 1 {
			return errors.New("-breakers requires -shards > 1")
		}
		sys.ConfigureBreakers(streach.BreakerConfig{
			Enabled: true, FailureRatio: *breakerRatio, Cooldown: *breakerCooldown,
		})
		fmt.Fprintln(os.Stderr, "per-shard circuit breakers enabled")
	}
	if *hedge {
		if sys.Shards() <= 1 {
			return errors.New("-hedge requires -shards > 1")
		}
		sys.SetHedging(streach.HedgeConfig{Enabled: true, Trigger: *hedgeAfter})
		fmt.Fprintln(os.Stderr, "hedged shard verification enabled")
	}
	if *chaos != "" {
		if err := applyChaos(sys, *chaos); err != nil {
			return err
		}
	}
	// Ingest starts after sharding so the writer's per-shard routing sees
	// the cluster partition.
	if *ingestOn {
		if err := sys.StartIngest(streach.IngestConfig{
			CompactInterval:    *compactEvery,
			CompactMaxKeys:     *compactKeys,
			CompactPauseBudget: *compactBudget,
		}); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "live ingest enabled (POST /v1/ingest)")
		if *compactEvery > 0 {
			fmt.Fprintf(os.Stderr, "background incremental compaction every %v\n", *compactEvery)
		}
	}
	if *warmPlans > 0 {
		sys.EnableWarmPlanning(*warmPlans)
		fmt.Fprintf(os.Stderr, "warm-plan pipeline enabled (top %d shapes)\n", *warmPlans)
	}
	if *warmDur > 0 {
		t0 := time.Now()
		if err := sys.WarmCtx(context.Background(), *warmStart, *warmDur); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "warmed con-index for [%v, %v] in %.1fs\n",
			*warmStart, *warmStart+*warmDur, time.Since(t0).Seconds())
	}

	cfg := serve.Config{
		DefaultTimeout:  *timeout,
		MaxTimeout:      *maxTimeout,
		MaxInFlight:     *maxInFlight,
		MinInFlight:     *minInFlight,
		StaticAdmission: *staticAdmission,
		ClientRPS:       *clientRPS,
		ClientBurst:     *clientBurst,
	}
	if *accessLog {
		cfg.AccessLog = log.New(os.Stderr, "", log.LstdFlags|log.Lmicroseconds)
	}
	handler := serve.New(sys, cfg)
	defer handler.Close()
	srv := &http.Server{
		Addr:    *addr,
		Handler: handler.Handler(),
	}

	// Graceful shutdown on SIGINT/SIGTERM: stop accepting, let in-flight
	// requests drain (their own deadlines bound the wait).
	idle := make(chan error, 1)
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		ctx, cancel := context.WithTimeout(context.Background(), *maxTimeout)
		defer cancel()
		idle <- srv.Shutdown(ctx)
	}()

	fmt.Fprintf(os.Stderr, "serving on %s (deadline %v, max %v)\n", *addr, *timeout, *maxTimeout)
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return <-idle
}

// applyChaos parses and applies the -chaos spec: comma-separated
// "shard=N:kind" items, where kind is error, panic, or hang. Development
// tooling for exercising the degraded-serving paths against a live
// server; it refuses to run on an unsharded system rather than silently
// doing nothing.
func applyChaos(sys *streach.System, spec string) error {
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		rest, ok := strings.CutPrefix(item, "shard=")
		if !ok {
			return fmt.Errorf("bad -chaos item %q: want shard=N:error|panic|hang", item)
		}
		nStr, kindStr, ok := strings.Cut(rest, ":")
		if !ok {
			return fmt.Errorf("bad -chaos item %q: want shard=N:error|panic|hang", item)
		}
		n, err := strconv.Atoi(nStr)
		if err != nil {
			return fmt.Errorf("bad -chaos shard %q: %v", nStr, err)
		}
		kind, err := streach.ParseShardFault(kindStr)
		if err != nil {
			return fmt.Errorf("bad -chaos item %q: %v", item, err)
		}
		if err := sys.InjectShardFault(n, kind); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "chaos: injected %s fault on shard %d\n", kind, n)
	}
	return nil
}
