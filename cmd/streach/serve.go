package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"streach/internal/serve"
)

// runServe builds (or reopens) a query system and serves it over HTTP:
// JSON/GeoJSON reachability queries on /v1/reach, route planning on
// /v1/route, liveness on /healthz, and cumulative query metrics on
// /metrics. Request deadlines (-timeout, client ?timeout=, capped by
// -max-timeout) map straight onto the query contexts, so a slow query is
// abandoned at the deadline instead of holding the worker pool.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	wf := addWorldFlags(fs)
	addr := fs.String("addr", ":8780", "listen address")
	timeout := fs.Duration("timeout", 10*time.Second, "default per-request query deadline")
	maxTimeout := fs.Duration("max-timeout", 30*time.Second, "cap on client-requested ?timeout=")
	maxInFlight := fs.Int("max-inflight", 0, "bounded admission: max concurrent query requests, 429 beyond (0 = default 64, negative = unlimited)")
	shards := fs.Int("shards", 0, "sharded execution: partition the network across this many engines and answer by scatter-gather (0/1 = single engine; results are bit-identical)")
	warmStart := fs.Duration("warm-start", 0, "precompute the Con-Index adjacency from this time of day (with -warm-dur)")
	warmDur := fs.Duration("warm-dur", 0, "warm window length (0 = skip warming)")
	dir := fs.String("dir", "", "system save directory: reopened when it holds a saved system")
	if err := fs.Parse(args); err != nil {
		return err
	}

	sys, err := loadOrBuildSystem(wf, *dir, false, 0, 0)
	if err != nil {
		return err
	}
	defer sys.Close()
	if *shards > 1 {
		if err := sys.Shard(*shards); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "sharded execution: %d partitioned engines\n", sys.Shards())
	}
	if *warmDur > 0 {
		t0 := time.Now()
		if err := sys.WarmCtx(context.Background(), *warmStart, *warmDur); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "warmed con-index for [%v, %v] in %.1fs\n",
			*warmStart, *warmStart+*warmDur, time.Since(t0).Seconds())
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: serve.New(sys, serve.Config{DefaultTimeout: *timeout, MaxTimeout: *maxTimeout, MaxInFlight: *maxInFlight}).Handler(),
	}

	// Graceful shutdown on SIGINT/SIGTERM: stop accepting, let in-flight
	// requests drain (their own deadlines bound the wait).
	idle := make(chan error, 1)
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		ctx, cancel := context.WithTimeout(context.Background(), *maxTimeout)
		defer cancel()
		idle <- srv.Shutdown(ctx)
	}()

	fmt.Fprintf(os.Stderr, "serving on %s (deadline %v, max %v)\n", *addr, *timeout, *maxTimeout)
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return <-idle
}
