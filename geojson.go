package streach

import (
	"encoding/json"
	"fmt"

	"streach/internal/roadnet"
)

// GeoJSON renders the region as a FeatureCollection of LineStrings, one
// per reachable road segment, with the segment ID and road class as
// properties. The output plugs directly into Leaflet/Mapbox/geojson.io,
// matching how the thesis visualises Prob-reachable regions (Fig 4.2,
// 4.4, 4.6, 4.9).
func (r *Region) GeoJSON() (string, error) {
	type feature struct {
		Type       string                 `json:"type"`
		Geometry   map[string]interface{} `json:"geometry"`
		Properties map[string]interface{} `json:"properties"`
	}
	fc := struct {
		Type     string    `json:"type"`
		Features []feature `json:"features"`
	}{Type: "FeatureCollection"}

	if r.sys == nil {
		return "", fmt.Errorf("streach: region is not attached to a system")
	}
	for _, id := range r.SegmentIDs {
		seg := r.sys.net.Segment(roadnet.SegmentID(id))
		coords := make([][2]float64, len(seg.Shape))
		for i, p := range seg.Shape {
			coords[i] = [2]float64{p.Lng, p.Lat} // GeoJSON is lng,lat
		}
		fc.Features = append(fc.Features, feature{
			Type: "Feature",
			Geometry: map[string]interface{}{
				"type":        "LineString",
				"coordinates": coords,
			},
			Properties: map[string]interface{}{
				"segment": id,
				"class":   seg.Class.String(),
				"length":  seg.Length,
			},
		})
	}
	out, err := json.Marshal(fc)
	if err != nil {
		return "", fmt.Errorf("streach: marshal geojson: %w", err)
	}
	return string(out), nil
}

// Bounds returns the region's bounding box as (minLat, minLng, maxLat,
// maxLng); ok is false for an empty region.
func (r *Region) Bounds() (minLat, minLng, maxLat, maxLng float64, ok bool) {
	if r.sys == nil || len(r.SegmentIDs) == 0 {
		return 0, 0, 0, 0, false
	}
	var box = r.sys.net.Segment(roadnet.SegmentID(r.SegmentIDs[0])).Box
	for _, id := range r.SegmentIDs[1:] {
		box.ExpandMBR(r.sys.net.Segment(roadnet.SegmentID(id)).Box)
	}
	return box.MinLat, box.MinLng, box.MaxLat, box.MaxLng, true
}

// Contains reports whether the region includes the segment ID.
func (r *Region) Contains(id int32) bool {
	lo, hi := 0, len(r.SegmentIDs)
	for lo < hi {
		mid := (lo + hi) / 2
		if r.SegmentIDs[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(r.SegmentIDs) && r.SegmentIDs[lo] == id
}
