package streach

import (
	"context"
	"testing"
	"time"
)

// assertScratchBalanced checks that every engine scratch pool in the
// system — the planner/base engine and each shard engine — has returned
// every pooled region and bitset it checked out. With no query in
// flight, an imbalance is a leak on some error, panic, or cancellation
// path.
func assertScratchBalanced(t *testing.T, s *System, when string) {
	t.Helper()
	if st := s.engine.ScratchStats(); !st.Balanced() {
		t.Fatalf("%s: base engine scratch leaked: %+v", when, st)
	}
	if c := s.cluster.Load(); c != nil {
		for i, st := range c.ScratchStats() {
			if !st.Balanced() {
				t.Fatalf("%s: cluster engine %d scratch leaked: %+v", when, i, st)
			}
		}
	}
}

// TestScratchPoolIntegrityAcrossShardFailure is the pool-ownership
// regression test: a shard failing (typed error and recovered panic)
// mid-DoBatch must not leak pooled bounding regions or bitsets — the
// error paths through plan construction, scatter, and release must
// return everything they checked out, and the pool must keep serving
// healthy traffic afterwards.
func TestScratchPoolIntegrityAcrossShardFailure(t *testing.T) {
	s := chaosSystem(t)
	defer clearChaos(t, s)
	q := testQuery(s)

	// A batch with shareable groups (same window, different thresholds)
	// plus a distinct window, so both the grouped and ungrouped DoBatch
	// paths run.
	reqs := []Request{
		ReachRequest(Location{Lat: q.Lat, Lng: q.Lng}, 11*time.Hour, 10*time.Minute, 0.2),
		ReachRequest(Location{Lat: q.Lat, Lng: q.Lng}, 11*time.Hour, 10*time.Minute, 0.4),
		ReachRequest(Location{Lat: q.Lat, Lng: q.Lng}, 11*time.Hour, 10*time.Minute, 0.6),
		ReachRequest(Location{Lat: q.Lat, Lng: q.Lng}, 11*time.Hour+30*time.Minute, 10*time.Minute, 0.3),
	}
	ctx := context.Background()

	for _, res := range s.DoBatch(ctx, reqs) {
		if res.Err != nil {
			t.Fatalf("healthy batch: %v", res.Err)
		}
	}
	assertScratchBalanced(t, s, "after healthy batch")

	for _, fault := range []ShardFault{ShardFaultError, ShardFaultPanic} {
		if err := s.InjectShardFault(2, fault); err != nil {
			t.Fatal(err)
		}
		failures := 0
		for _, res := range s.DoBatch(ctx, reqs) {
			if res.Err != nil {
				failures++
				if CodeOf(res.Err) != ShardFailure {
					t.Fatalf("fault %v: code = %v, want ShardFailure (%v)", fault, CodeOf(res.Err), res.Err)
				}
			}
		}
		if failures == 0 {
			t.Fatalf("fault %v: no request failed; the injected shard was never exercised", fault)
		}
		assertScratchBalanced(t, s, "after faulted batch ("+fault.String()+")")
	}

	// Cancellation mid-batch is the third error path worth pinning.
	clearChaos(t, s)
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	for _, res := range s.DoBatch(cancelled, reqs) {
		if res.Err == nil {
			t.Fatal("cancelled batch returned a result")
		}
	}
	assertScratchBalanced(t, s, "after cancelled batch")

	// And the pool still serves healthy traffic.
	for _, res := range s.DoBatch(ctx, reqs) {
		if res.Err != nil {
			t.Fatalf("healed batch: %v", res.Err)
		}
	}
	assertScratchBalanced(t, s, "after healed batch")
}
