module streach

go 1.22
