// Location-based advertising (thesis Fig 1.2): a shopping mall wants to
// know where to distribute coupons — the area its customers can reach it
// from (equivalently, that is reachable from it) shrinks at rush hour.
// This example compares the mall's reachable region at 13:00 against
// 18:00 and writes both regions as GeoJSON for a map.
//
// Run with: go run ./examples/advertising
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"streach"
)

func main() {
	sys, err := streach.NewSystem(streach.CityConfig{
		OriginLat: 22.50, OriginLng: 114.00,
		Rows: 12, Cols: 12,
		SpacingMeters:   900,
		LocalFraction:   0.4,
		ResegmentMeters: 450,
		Seed:            21,
	}, streach.FleetConfig{Taxis: 130, Days: 12, Seed: 22}, streach.DefaultIndexConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// The "mall" sits on the busiest midday segment.
	mall := sys.BusiestLocation(13 * time.Hour)
	fmt.Printf("mall location: (%.5f, %.5f)\n\n", mall.Lat, mall.Lng)

	for _, tc := range []struct {
		name  string
		start time.Duration
	}{
		{"13:00 (midday)", 13 * time.Hour},
		{"18:00 (evening rush)", 18 * time.Hour},
	} {
		// Each query runs under a 15 s deadline budget: if the index were
		// cold and slow, the query would abort rather than hang the batch.
		ctx := context.Background()
		if err := sys.WarmCtx(ctx, tc.start, 10*time.Minute); err != nil { // offline Con-Index construction
			log.Fatal(err)
		}
		region, err := sys.Do(ctx,
			streach.ReachRequest(mall, tc.start, 10*time.Minute, 0.2),
			streach.WithDeadlineBudget(15*time.Second))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %4d segments, %6.1f km coupon-drop area (answered in %v)\n",
			tc.name+":", len(region.SegmentIDs), region.RoadKm, region.Metrics.Elapsed)

		gj, err := region.GeoJSON()
		if err != nil {
			log.Fatal(err)
		}
		name := fmt.Sprintf("advertising_%02dh.geojson", int(tc.start.Hours()))
		if err := os.WriteFile(name, []byte(gj), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s wrote %s\n", "", name)
	}

	fmt.Println("\nthe rush-hour region is smaller: traffic congestion cuts how far")
	fmt.Println("customers travel in 10 minutes, so the 18:00 coupon area should be tighter.")
}
