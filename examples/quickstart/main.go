// Quickstart: generate a small synthetic city and taxi fleet, build the
// ST-Index and Con-Index, and answer one spatio-temporal reachability
// query through the context-first Do API.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"streach"
)

func main() {
	city := streach.CityConfig{
		OriginLat: 22.50, OriginLng: 114.00,
		Rows: 12, Cols: 12,
		SpacingMeters:   900,
		LocalFraction:   0.4,
		ResegmentMeters: 450,
		Seed:            1,
	}
	fleet := streach.FleetConfig{Taxis: 100, Days: 10, Seed: 2}

	fmt.Println("building city, simulating fleet, constructing indexes...")
	t0 := time.Now()
	sys, err := streach.NewSystem(city, fleet, streach.DefaultIndexConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	st := sys.Stats()
	fmt.Printf("ready in %.1fs: %d road segments, %d taxis x %d days, %d segment visits\n\n",
		time.Since(t0).Seconds(), st.Segments, st.Taxis, st.Days, st.Visits)

	// Ask: starting from the busiest downtown segment at 11:00, which
	// road segments are reachable within 10 minutes on at least 20% of
	// historical days? The context carries a deadline into every layer of
	// the query — an expired or cancelled context aborts it mid-flight.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	if err := sys.WarmCtx(ctx, 11*time.Hour, 10*time.Minute); err != nil { // offline Con-Index construction
		log.Fatal(err)
	}
	loc := sys.BusiestLocation(11 * time.Hour)
	req := streach.ReachRequest(loc, 11*time.Hour, 10*time.Minute, 0.2)
	region, err := sys.Do(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: from (%.5f, %.5f) at 11:00 for 10 min, Prob >= 20%%\n", loc.Lat, loc.Lng)
	fmt.Printf("Prob-reachable region: %d segments, %.1f km of road\n",
		len(region.SegmentIDs), region.RoadKm)
	fmt.Printf("answered in %v (%d segments verified against disk, %d page reads)\n",
		region.Metrics.Elapsed, region.Metrics.Evaluated, region.Metrics.PageReads)

	// Compare with the exhaustive-search baseline: same request, one
	// per-query option.
	es, err := sys.Do(ctx, req, streach.WithAlgorithm(streach.AlgoExhaustive))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexhaustive baseline: %v, %d segments verified\n",
		es.Metrics.Elapsed, es.Metrics.Evaluated)
	saving := 100 * (1 - float64(region.Metrics.Evaluated)/float64(es.Metrics.Evaluated))
	fmt.Printf("SQMB+TBS verified %.0f%% fewer segments than exhaustive search\n", saving)
}
