// Quickstart: generate a small synthetic city and taxi fleet, build the
// ST-Index and Con-Index, and answer one spatio-temporal reachability
// query.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"streach"
)

func main() {
	city := streach.CityConfig{
		OriginLat: 22.50, OriginLng: 114.00,
		Rows: 12, Cols: 12,
		SpacingMeters:   900,
		LocalFraction:   0.4,
		ResegmentMeters: 450,
		Seed:            1,
	}
	fleet := streach.FleetConfig{Taxis: 100, Days: 10, Seed: 2}

	fmt.Println("building city, simulating fleet, constructing indexes...")
	t0 := time.Now()
	sys, err := streach.NewSystem(city, fleet, streach.DefaultIndexConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	st := sys.Stats()
	fmt.Printf("ready in %.1fs: %d road segments, %d taxis x %d days, %d segment visits\n\n",
		time.Since(t0).Seconds(), st.Segments, st.Taxis, st.Days, st.Visits)

	// Ask: starting from the busiest downtown segment at 11:00, which
	// road segments are reachable within 10 minutes on at least 20% of
	// historical days?
	sys.Warm(11*time.Hour, 10*time.Minute) // offline Con-Index construction
	loc := sys.BusiestLocation(11 * time.Hour)
	q := streach.Query{
		Lat: loc.Lat, Lng: loc.Lng,
		Start:    11 * time.Hour,
		Duration: 10 * time.Minute,
		Prob:     0.2,
	}
	region, err := sys.Reach(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: from (%.5f, %.5f) at 11:00 for 10 min, Prob >= 20%%\n", q.Lat, q.Lng)
	fmt.Printf("Prob-reachable region: %d segments, %.1f km of road\n",
		len(region.SegmentIDs), region.RoadKm)
	fmt.Printf("answered in %v (%d segments verified against disk, %d page reads)\n",
		region.Metrics.Elapsed, region.Metrics.Evaluated, region.Metrics.PageReads)

	// Compare with the exhaustive-search baseline.
	es, err := sys.ReachES(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexhaustive baseline: %v, %d segments verified\n",
		es.Metrics.Elapsed, es.Metrics.Evaluated)
	saving := 100 * (1 - float64(region.Metrics.Evaluated)/float64(es.Metrics.Evaluated))
	fmt.Printf("SQMB+TBS verified %.0f%% fewer segments than exhaustive search\n", saving)
}
