// Isochrone comparison (thesis §1.1–1.2): the traditional reachability
// query is a static distance/free-flow-time expansion over the road
// network — it returns the same answer at 03:00 and at 18:00. The
// data-driven Prob-reachable region changes with the clock. This example
// computes both and quantifies how misleading the static answer is at
// rush hour.
//
// Run with: go run ./examples/isochrone
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"streach"
	"streach/internal/geo"
	"streach/internal/roadnet"
)

func main() {
	sys, err := streach.NewSystem(streach.CityConfig{
		OriginLat: 22.50, OriginLng: 114.00,
		Rows: 12, Cols: 12,
		SpacingMeters:   900,
		LocalFraction:   0.4,
		ResegmentMeters: 450,
		Seed:            51,
	}, streach.FleetConfig{Taxis: 130, Days: 12, Seed: 52}, streach.DefaultIndexConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	loc := sys.BusiestLocation(10 * time.Hour)
	const horizon = 10 * time.Minute
	net := sys.Network()

	// Static isochrone: expand at per-class free-flow speeds — the
	// time-invariant answer of the traditional approach.
	start, _, _, ok := net.SnapPoint(geo.Point{Lat: loc.Lat, Lng: loc.Lng})
	if !ok {
		log.Fatal("snap failed")
	}
	w := net.TravelTimeWeight(func(id roadnet.SegmentID) float64 {
		return net.Segment(id).Class.FreeFlowSpeed()
	})
	staticSet := map[roadnet.SegmentID]bool{}
	var staticKm float64
	net.Expand(start, horizon.Seconds(), w, func(id roadnet.SegmentID, _ float64) bool {
		staticSet[id] = true
		staticKm += net.Segment(id).Length / 1000
		return true
	})
	fmt.Printf("static free-flow isochrone (any time of day): %d segments, %.1f km\n\n",
		len(staticSet), staticKm)

	fmt.Printf("%-8s %10s %10s %22s\n", "time", "segments", "km", "static overestimates by")
	ctx := context.Background()
	for _, h := range []int{3, 8, 13, 18} {
		tod := time.Duration(h) * time.Hour
		if err := sys.WarmCtx(ctx, tod, horizon); err != nil {
			log.Fatal(err)
		}
		region, err := sys.Do(ctx, streach.ReachRequest(loc, tod, horizon, 0.2))
		if err != nil {
			log.Fatal(err)
		}
		over := "—"
		if region.RoadKm > 0 {
			over = fmt.Sprintf("%.1fx", staticKm/region.RoadKm)
		}
		fmt.Printf("%02d:00    %10d %10.1f %22s\n", h, len(region.SegmentIDs), region.RoadKm, over)
	}

	fmt.Println("\nthe static answer never changes; the data-driven region shrinks at rush")
	fmt.Println("hour and is bounded by where taxis actually went — the paper's motivation.")
}
