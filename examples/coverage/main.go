// Business coverage analysis (thesis Fig 1.1/4.9): a chained company with
// several branches wants its overall spatial coverage — the union of each
// branch's reachable region. This is the m-query scenario: MQMB answers
// it in one pass, eliminating the work duplicated in overlapping regions.
//
// Run with: go run ./examples/coverage
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"streach"
)

func main() {
	sys, err := streach.NewSystem(streach.CityConfig{
		OriginLat: 22.50, OriginLng: 114.00,
		Rows: 12, Cols: 12,
		SpacingMeters:   900,
		LocalFraction:   0.4,
		ResegmentMeters: 450,
		Seed:            31,
	}, streach.FleetConfig{Taxis: 130, Days: 12, Seed: 32}, streach.DefaultIndexConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Three branch locations: downtown plus two offsets.
	hq := sys.BusiestLocation(11 * time.Hour)
	branches := []streach.Location{
		hq,
		{Lat: hq.Lat + 0.018, Lng: hq.Lng + 0.004},
		{Lat: hq.Lat - 0.006, Lng: hq.Lng + 0.020},
	}
	for i, b := range branches {
		fmt.Printf("branch %d: (%.5f, %.5f)\n", i+1, b.Lat, b.Lng)
	}
	const (
		start = 11 * time.Hour
		dur   = 15 * time.Minute
		prob  = 0.2
	)

	sys.Warm(start, dur) // offline Con-Index construction

	// Coverage per branch (s-queries).
	ctx := context.Background()
	fmt.Println("\nper-branch 15-minute coverage:")
	for i, b := range branches {
		r, err := sys.Do(ctx, streach.ReachRequest(b, start, dur, prob))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  branch %d: %4d segments, %6.1f km\n", i+1, len(r.SegmentIDs), r.RoadKm)
	}

	// Overall coverage two ways: the m-query and the naive union — the
	// same request, dispatched through two algorithms.
	mreq := streach.MultiRequest(branches, start, dur, prob)
	m, err := sys.Do(ctx, mreq)
	if err != nil {
		log.Fatal(err)
	}
	seq, err := sys.Do(ctx, mreq, streach.WithAlgorithm(streach.AlgoSequential))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noverall coverage (MQMB, one pass):    %4d segments, %6.1f km in %v\n",
		len(m.SegmentIDs), m.RoadKm, m.Metrics.Elapsed)
	fmt.Printf("overall coverage (3 s-queries union): %4d segments, %6.1f km in %v\n",
		len(seq.SegmentIDs), seq.RoadKm, seq.Metrics.Elapsed)
	fmt.Printf("\nMQMB verified %d segments vs %d for the sequential union\n",
		m.Metrics.Evaluated, seq.Metrics.Evaluated)

	cityKm := sys.Stats().RoadKm
	fmt.Printf("the chain covers %.0f%% of the city's %.0f km road network within 15 minutes\n",
		100*m.RoadKm/cityKm, cityKm)
}
