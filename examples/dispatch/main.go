// Emergency dispatching analysis (thesis §1.1, application 4): a
// dispatcher compares candidate depot sites by how much of the city each
// can actually reach within a response window, at different times of day.
// Because the index is data-driven, the same site scores differently at
// 03:00 and at 18:00.
//
// Run with: go run ./examples/dispatch
package main

import (
	"fmt"
	"log"
	"time"

	"streach"
)

func main() {
	sys, err := streach.NewSystem(streach.CityConfig{
		OriginLat: 22.50, OriginLng: 114.00,
		Rows: 12, Cols: 12,
		SpacingMeters:   900,
		LocalFraction:   0.4,
		ResegmentMeters: 450,
		Seed:            41,
	}, streach.FleetConfig{Taxis: 130, Days: 12, Seed: 42}, streach.DefaultIndexConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Candidate depot sites: downtown, mid-town, and edge of town.
	downtown := sys.BusiestLocation(10 * time.Hour)
	sites := []struct {
		name string
		loc  streach.Location
	}{
		{"downtown", downtown},
		{"mid-town", streach.Location{Lat: downtown.Lat + 0.02, Lng: downtown.Lng + 0.01}},
		{"edge", streach.Location{Lat: downtown.Lat + 0.035, Lng: downtown.Lng + 0.03}},
	}
	windows := []time.Duration{3 * time.Hour, 8 * time.Hour, 18 * time.Hour}

	const (
		response = 10 * time.Minute
		prob     = 0.2
	)
	fmt.Printf("%-10s", "site")
	for _, w := range windows {
		fmt.Printf("  %9s", fmt.Sprintf("%02d:00 km", int(w.Hours())))
	}
	fmt.Println()

	type score struct {
		name  string
		total float64
	}
	for _, w := range windows {
		sys.Warm(w, response) // offline Con-Index construction
	}
	var best score
	for _, site := range sites {
		fmt.Printf("%-10s", site.name)
		var total float64
		for _, w := range windows {
			region, err := sys.Reach(streach.Query{
				Lat: site.loc.Lat, Lng: site.loc.Lng,
				Start: w, Duration: response, Prob: prob,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %9.1f", region.RoadKm)
			total += region.RoadKm
		}
		fmt.Println()
		if total > best.total {
			best = score{site.name, total}
		}
	}
	fmt.Printf("\nbest overall 10-minute response coverage: %s\n", best.name)
	fmt.Println("note how every site's 18:00 coverage shrinks relative to 03:00 — the")
	fmt.Println("rush-hour effect the static distance-based approach cannot capture.")
}
