// Emergency dispatching analysis (thesis §1.1, application 4): a
// dispatcher compares candidate depot sites by how much of the city each
// can actually reach within a response window, at different times of day.
// Because the index is data-driven, the same site scores differently at
// 03:00 and at 18:00. The site x window grid is one DoBatch call: the
// system fans the queries out over a bounded worker pool and returns the
// answers positionally.
//
// Run with: go run ./examples/dispatch
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"streach"
)

func main() {
	sys, err := streach.NewSystem(streach.CityConfig{
		OriginLat: 22.50, OriginLng: 114.00,
		Rows: 12, Cols: 12,
		SpacingMeters:   900,
		LocalFraction:   0.4,
		ResegmentMeters: 450,
		Seed:            41,
	}, streach.FleetConfig{Taxis: 130, Days: 12, Seed: 42}, streach.DefaultIndexConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Candidate depot sites: downtown, mid-town, and edge of town.
	downtown := sys.BusiestLocation(10 * time.Hour)
	sites := []struct {
		name string
		loc  streach.Location
	}{
		{"downtown", downtown},
		{"mid-town", streach.Location{Lat: downtown.Lat + 0.02, Lng: downtown.Lng + 0.01}},
		{"edge", streach.Location{Lat: downtown.Lat + 0.035, Lng: downtown.Lng + 0.03}},
	}
	windows := []time.Duration{3 * time.Hour, 8 * time.Hour, 18 * time.Hour}

	const (
		response = 10 * time.Minute
		prob     = 0.2
	)
	fmt.Printf("%-10s", "site")
	for _, w := range windows {
		fmt.Printf("  %9s", fmt.Sprintf("%02d:00 km", int(w.Hours())))
	}
	fmt.Println()

	type score struct {
		name  string
		total float64
	}
	ctx := context.Background()
	for _, w := range windows {
		if err := sys.WarmCtx(ctx, w, response); err != nil { // offline Con-Index construction
			log.Fatal(err)
		}
	}
	// The whole site x window grid as one batch, answered in parallel.
	var reqs []streach.Request
	for _, site := range sites {
		for _, w := range windows {
			reqs = append(reqs, streach.ReachRequest(site.loc, w, response, prob))
		}
	}
	results := sys.DoBatch(ctx, reqs, streach.WithBatchWorkers(4))

	var best score
	for i, site := range sites {
		fmt.Printf("%-10s", site.name)
		var total float64
		for j := range windows {
			r := results[i*len(windows)+j]
			if r.Err != nil {
				log.Fatal(r.Err)
			}
			fmt.Printf("  %9.1f", r.Region.RoadKm)
			total += r.Region.RoadKm
		}
		fmt.Println()
		if total > best.total {
			best = score{site.name, total}
		}
	}
	fmt.Printf("\nbest overall 10-minute response coverage: %s\n", best.name)
	fmt.Println("note how every site's 18:00 coverage shrinks relative to 03:00 — the")
	fmt.Println("rush-hour effect the static distance-based approach cannot capture.")
}
