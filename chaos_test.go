package streach

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

var (
	chaosOnce sync.Once
	chaosSys  *System
	chaosErr  error
)

// chaosSystem builds a dedicated 4-shard system for fault injection, so
// injected faults never leak into the shared fixtures.
func chaosSystem(t *testing.T) *System {
	t.Helper()
	base := smallSystem(t)
	chaosOnce.Do(func() {
		idx := DefaultIndexConfig()
		idx.PlanCache = -1
		idx.Shards = 4
		chaosSys, chaosErr = NewSystemFromData(base.Network(), base.Dataset(), idx)
	})
	if chaosErr != nil {
		t.Fatal(chaosErr)
	}
	return chaosSys
}

func clearChaos(t *testing.T, s *System) {
	t.Helper()
	for sh := 0; sh < s.Shards(); sh++ {
		if err := s.InjectShardFault(sh, ShardFaultNone); err != nil {
			t.Fatal(err)
		}
	}
}

// TestChaosTypedErrorCodes pins the facade acceptance criterion: with 1
// of 4 shards injected to fail, default-mode Do returns a
// streach.Error whose code is ShardFailure (hang variant, bounded by a
// shard budget: Timeout), and no goroutines leak across the failures.
func TestChaosTypedErrorCodes(t *testing.T) {
	s := chaosSystem(t)
	defer clearChaos(t, s)
	req := ReachRequest(Location{Lat: testQuery(s).Lat, Lng: testQuery(s).Lng},
		11*time.Hour, 10*time.Minute, 0.2)

	variants := []struct {
		fault ShardFault
		opts  []Option
		want  ErrorCode
	}{
		{ShardFaultError, nil, ShardFailure},
		{ShardFaultPanic, nil, ShardFailure},
		{ShardFaultHang, []Option{WithShardBudget(50 * time.Millisecond)}, Timeout},
	}
	before := goroutineCount()
	for _, v := range variants {
		t.Run(v.fault.String(), func(t *testing.T) {
			if err := s.InjectShardFault(1, v.fault); err != nil {
				t.Fatal(err)
			}
			defer clearChaos(t, s)
			_, err := s.Do(context.Background(), req, v.opts...)
			if err == nil {
				t.Fatal("Do succeeded despite injected fault")
			}
			var te *Error
			if !errors.As(err, &te) {
				t.Fatalf("error %v (%T) is not a *streach.Error", err, err)
			}
			if te.Code != v.want {
				t.Fatalf("code = %v (%v), want %v", te.Code, err, v.want)
			}
			if CodeOf(err) != v.want {
				t.Fatalf("CodeOf = %v, want %v", CodeOf(err), v.want)
			}
		})
	}
	assertNoGoroutineGrowth(t, before)

	// Health records the failures and heals visibly.
	h := s.ShardHealth()
	if len(h) != 4 {
		t.Fatalf("health entries = %d, want 4", len(h))
	}
	if h[1].Failures == 0 || !h[1].Degraded() && h[1].LastError == "" {
		t.Fatalf("shard 1 health = %+v, want recorded failures", h[1])
	}
	if h[0].Failures != 0 {
		t.Fatalf("shard 0 health = %+v, want clean", h[0])
	}
}

// TestChaosPartialResults pins the degraded path at the facade: the
// same injected faults under WithPartialResults return an answer whose
// Degraded metadata names the lost shard, is a strict subset of the
// healthy answer, and heals back to bit-identical once cleared.
func TestChaosPartialResults(t *testing.T) {
	s := chaosSystem(t)
	defer clearChaos(t, s)
	req := ReachRequest(Location{Lat: testQuery(s).Lat, Lng: testQuery(s).Lng},
		11*time.Hour, 10*time.Minute, 0.2)

	healthy, err := s.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if healthy.Degraded != nil {
		t.Fatal("healthy answer reported degradation")
	}

	healthySet := map[int32]bool{}
	for _, id := range healthy.SegmentIDs {
		healthySet[id] = true
	}

	for _, fault := range []ShardFault{ShardFaultError, ShardFaultPanic} {
		t.Run(fault.String(), func(t *testing.T) {
			// Fail each shard in turn: every degraded answer must be a
			// subset of the healthy one, and at least one shard must own
			// part of this query's region, shrinking the answer.
			shrank := false
			for sh := 0; sh < s.Shards(); sh++ {
				if err := s.InjectShardFault(sh, fault); err != nil {
					t.Fatal(err)
				}
				got, err := s.Do(context.Background(), req, WithPartialResults(true))
				clearChaos(t, s)
				if err != nil {
					t.Fatalf("shard %d: partial-mode Do failed outright: %v", sh, err)
				}
				d := got.Degraded
				if d == nil {
					t.Fatalf("shard %d: no Degraded record on a lossy answer", sh)
				}
				if len(d.MissingShards) != 1 || d.MissingShards[0] != sh {
					t.Fatalf("shard %d: missing shards = %v", sh, d.MissingShards)
				}
				if d.Coverage <= 0 || d.Coverage >= 1 {
					t.Fatalf("shard %d: coverage = %v, want in (0, 1)", sh, d.Coverage)
				}
				want := "shard " + string(rune('0'+sh))
				if len(d.Causes) != 1 || !strings.Contains(d.Causes[0].Error(), want) {
					t.Fatalf("shard %d: causes = %v", sh, d.Causes)
				}
				for _, id := range got.SegmentIDs {
					if !healthySet[id] {
						t.Fatalf("shard %d: degraded answer contains segment %d absent from the healthy answer", sh, id)
					}
				}
				if len(got.SegmentIDs) < len(healthy.SegmentIDs) {
					shrank = true
				}
			}
			if !shrank {
				t.Fatal("no single-shard failure shrank the answer: injection had no observable effect")
			}

			// Cleared: bit-identical to the healthy answer again.
			again, err := s.Do(context.Background(), req)
			if err != nil {
				t.Fatal(err)
			}
			if again.Degraded != nil {
				t.Fatal("healed answer still reports degradation")
			}
			sameRegion(t, "healed", again, healthy)
		})
	}
}

// TestChaosUnshardedInjectionRejected: fault injection needs shards.
func TestChaosUnshardedInjectionRejected(t *testing.T) {
	s := smallSystem(t)
	err := s.InjectShardFault(0, ShardFaultError)
	if err == nil {
		t.Fatal("InjectShardFault on an unsharded system should fail")
	}
	if CodeOf(err) != InvalidRequest {
		t.Fatalf("code = %v, want InvalidRequest", CodeOf(err))
	}
}

// goroutineCount samples runtime.NumGoroutine after a settle pause, so
// short-lived runtime helpers do not count.
func goroutineCount() int {
	runtime.GC()
	time.Sleep(10 * time.Millisecond)
	return runtime.NumGoroutine()
}

// assertNoGoroutineGrowth fails (with a full stack dump) if the
// goroutine count has not settled back to the baseline.
func assertNoGoroutineGrowth(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	var now int
	for {
		now = runtime.NumGoroutine()
		if now <= before {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines grew %d -> %d; stacks:\n%s", before, now, buf[:n])
}
