package streach

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestSaveRestoresWarmedAdjacency asserts the persisted conindex.adj
// blob makes a reopened system answer its first (cold) query from
// restored rows instead of re-running travel-time Dijkstras.
func TestSaveRestoresWarmedAdjacency(t *testing.T) {
	s := smallSystem(t)
	q := testQuery(s)
	s.Warm(q.Start, q.Duration)
	want, err := s.Reach(q)
	if err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(t.TempDir(), "warm")
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	reopened, err := OpenSystem(dir, DefaultIndexConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()

	con := reopened.Engine().ConIndex()
	if con.Stats().Loaded == 0 {
		t.Fatal("reopened system should restore adjacency rows")
	}
	if con.CachedLists() == 0 {
		t.Fatal("reopened system should have warmed forward tables")
	}
	got, err := reopened.Reach(q)
	if err != nil {
		t.Fatal(err)
	}
	if got.Metrics.ConMaterialised != 0 {
		t.Fatalf("cold query on restored adjacency materialised %d rows, want 0",
			got.Metrics.ConMaterialised)
	}
	if got.Metrics.ConHits == 0 {
		t.Fatal("cold query should report adjacency hits")
	}
	if len(got.SegmentIDs) != len(want.SegmentIDs) {
		t.Fatalf("restored-adjacency region has %d segments, want %d",
			len(got.SegmentIDs), len(want.SegmentIDs))
	}
	for i := range want.SegmentIDs {
		if got.SegmentIDs[i] != want.SegmentIDs[i] {
			t.Fatalf("restored-adjacency region differs at %d", i)
		}
	}
}

// TestOpenSystemPreAdjacencySaveDir asserts save directories written
// before the adjacency blob existed (no conindex.adj) still open, and
// that a corrupt blob degrades to a cold-table open instead of failing.
func TestOpenSystemPreAdjacencySaveDir(t *testing.T) {
	s := smallSystem(t)
	q := testQuery(s)
	s.Warm(q.Start, q.Duration)
	want, err := s.Reach(q)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "legacy")
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	adj := filepath.Join(dir, "conindex.adj")

	check := func(label string) {
		reopened, err := OpenSystem(dir, DefaultIndexConfig())
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		defer reopened.Close()
		got, err := reopened.Reach(q)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if len(got.SegmentIDs) != len(want.SegmentIDs) {
			t.Fatalf("%s: region has %d segments, want %d", label, len(got.SegmentIDs), len(want.SegmentIDs))
		}
	}

	if err := os.Remove(adj); err != nil {
		t.Fatal(err)
	}
	check("missing adjacency file")

	if err := os.WriteFile(adj, []byte("not an adjacency blob"), 0o644); err != nil {
		t.Fatal(err)
	}
	check("corrupt adjacency file")
}

// TestWarmParallelDeterministic asserts a parallel Warm produces the
// same query answers as a cold engine (the worker pool only changes who
// runs each Dijkstra, never its result).
func TestWarmParallelDeterministic(t *testing.T) {
	s := smallSystem(t)
	q := testQuery(s)
	cold, err := NewSystemFromData(s.Network(), s.Dataset(), DefaultIndexConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Close()
	want, err := cold.Reach(q)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := NewSystemFromData(s.Network(), s.Dataset(), DefaultIndexConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	warm.Warm(q.Start, 30*time.Minute)
	got, err := warm.Reach(q)
	if err != nil {
		t.Fatal(err)
	}
	if got.Metrics.ConMaterialised != 0 {
		t.Fatalf("warmed query materialised %d rows, want 0", got.Metrics.ConMaterialised)
	}
	if len(got.SegmentIDs) != len(want.SegmentIDs) {
		t.Fatalf("warm region has %d segments, cold %d", len(got.SegmentIDs), len(want.SegmentIDs))
	}
	for i := range want.SegmentIDs {
		if got.SegmentIDs[i] != want.SegmentIDs[i] {
			t.Fatalf("warm/cold regions differ at %d", i)
		}
	}
}
