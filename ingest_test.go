package streach

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"streach/internal/traj"
)

// liveFixtureUpdates is a deterministic batch of position updates from a
// fresh fleet (taxi IDs above anything simulated), concentrated around
// the test query window so the answers actually change.
func liveFixtureUpdates(s *System) []IngestUpdate {
	n := s.Network().NumSegments()
	days := s.Dataset().Days
	var out []IngestUpdate
	for i := 0; i < 600; i++ {
		enterMs := int32((10*3600+600*(i%15))*1000 + (i%7)*1000)
		out = append(out, IngestUpdate{
			TaxiID:    int32(1000 + i%25),
			Day:       i % days,
			SegmentID: int32((i * 13) % n),
			EnterMs:   enterMs,
			ExitMs:    enterMs + 45_000,
			SpeedMps:  float32(4 + i%9),
		})
	}
	return out
}

// blanketUpdates covers every segment on every day at the given slots,
// so any reach query inside that window flips to full-probability
// answers once the batch lands — a guaranteed answer change for
// cache-staleness tests, no matter how dense the base traffic is.
func blanketUpdates(s *System, slots []int) []IngestUpdate {
	n := s.Network().NumSegments()
	days := s.Dataset().Days
	var out []IngestUpdate
	for day := 0; day < days; day++ {
		for seg := 0; seg < n; seg++ {
			for _, slot := range slots {
				ms := int32(slot*300*1000 + 1000)
				out = append(out, IngestUpdate{
					TaxiID: int32(1000 + seg%30), Day: day, SegmentID: int32(seg),
					EnterMs: ms, ExitMs: ms + 20_000, SpeedMps: 8,
				})
			}
		}
	}
	return out
}

// unionDataset builds the dataset an offline rebuild would see: the base
// trajectories plus every ingested update as a one-visit trajectory.
func unionDataset(base *traj.Dataset, updates []IngestUpdate) *traj.Dataset {
	matched := append([]traj.MatchedTrajectory(nil), base.Matched...)
	for _, u := range toIngestUpdates(updates) {
		matched = append(matched, traj.MatchedTrajectory{
			Taxi: u.Taxi, Day: u.Day,
			Visits: []traj.Visit{{Segment: u.Seg, EnterMs: u.EnterMs, ExitMs: u.ExitMs, Speed: u.Speed}},
		})
	}
	return &traj.Dataset{BaseDate: base.BaseDate, Days: base.Days, Matched: matched}
}

func regionsEqual(t *testing.T, label string, got, want *Region) {
	t.Helper()
	if !reflect.DeepEqual(got.SegmentIDs, want.SegmentIDs) {
		t.Fatalf("%s: segment sets differ (%d vs %d segments)", label, len(got.SegmentIDs), len(want.SegmentIDs))
	}
	if !reflect.DeepEqual(got.Probabilities, want.Probabilities) {
		t.Fatalf("%s: probabilities differ", label)
	}
}

// TestIngestEquivalenceOfflineRebuild is the tentpole acceptance test:
// a system answering from base + delta (and, after compaction, from the
// folded blobs) is bit-identical to one built offline over the union of
// base and ingested data — across probability thresholds, query kinds,
// and sharding.
func TestIngestEquivalenceOfflineRebuild(t *testing.T) {
	base := smallSystem(t)
	idx := DefaultIndexConfig()
	idx.PlanCache = -1
	live, err := NewSystemFromData(base.Network(), base.Dataset(), idx)
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	if err := live.StartIngest(IngestConfig{FlushInterval: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	updates := liveFixtureUpdates(live)
	if err := live.Ingest(context.Background(), updates); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := live.FlushIngest(ctx); err != nil {
		t.Fatal(err)
	}

	offline, err := NewSystemFromData(base.Network(), unionDataset(base.Dataset(), updates), idx)
	if err != nil {
		t.Fatal(err)
	}
	defer offline.Close()

	loc := base.BusiestLocation(10 * time.Hour)
	locs := []Location{loc, {loc.Lat + 0.01, loc.Lng}, {loc.Lat, loc.Lng + 0.01}}
	start, dur := 10*time.Hour, 10*time.Minute
	requests := func(prob float64) map[string]Request {
		return map[string]Request{
			"reach":   ReachRequest(loc, start, dur, prob),
			"reverse": ReverseRequest(loc, start, dur, prob),
			"multi":   MultiRequest(locs, start, dur, prob),
		}
	}

	check := func(stage string, sys *System) {
		t.Helper()
		for _, prob := range []float64{0.1, 0.2, 0.4, 0.8} {
			for kind, req := range requests(prob) {
				got, err := sys.Do(context.Background(), req)
				if err != nil {
					t.Fatalf("%s %s p=%.1f: %v", stage, kind, prob, err)
				}
				want, err := offline.Do(context.Background(), req)
				if err != nil {
					t.Fatal(err)
				}
				regionsEqual(t, fmt.Sprintf("%s %s p=%.1f", stage, kind, prob), got, want)
			}
		}
	}

	check("base+delta k=1", live)

	// Sharded execution over the merged reads.
	if err := live.Shard(4); err != nil {
		t.Fatal(err)
	}
	check("base+delta k=4", live)

	res, err := live.CompactIngest(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Keys == 0 || res.Epoch != 1 {
		t.Fatalf("compaction result: %+v", res)
	}
	if res.Durable {
		t.Fatal("directory-less system reported a durable compaction")
	}
	if live.IndexEpoch() != 1 {
		t.Fatalf("epoch = %d after compaction", live.IndexEpoch())
	}
	check("post-compaction k=4", live)
	if err := live.Shard(1); err != nil {
		t.Fatal(err)
	}
	check("post-compaction k=1", live)

	st := live.IngestStats()
	if st.DirtyKeys != 0 || st.PendingObs != 0 {
		t.Fatalf("delta not drained: %+v", st)
	}
	if st.Applied != int64(len(updates)) || st.Dropped != 0 {
		t.Fatalf("writer stats: %+v (want %d applied)", st, len(updates))
	}
}

// TestIngestVersionKeysInvalidateCaches pins satellite (a): the plan
// cache and the serve coalescer key on DataVersionKey, so a cached
// answer can never outlive the data it was computed from.
func TestIngestVersionKeysInvalidateCaches(t *testing.T) {
	base := smallSystem(t)
	idx := DefaultIndexConfig() // plan cache ON
	sys, err := NewSystemFromData(base.Network(), base.Dataset(), idx)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.StartIngest(IngestConfig{FlushInterval: time.Millisecond}); err != nil {
		t.Fatal(err)
	}

	key0 := sys.DataVersionKey()
	// Query an off-peak window, then blanket it with live traffic: the
	// answer is guaranteed to change, so a stale cached plan is caught.
	req := ReachRequest(base.BusiestLocation(10*time.Hour), 2*time.Hour, 10*time.Minute, 0.2)
	before, err := sys.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	// Same request again: must hit the plan cache.
	sh0 := sys.SharingStats()
	if _, err := sys.Do(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if sys.SharingStats().PlanCacheHits <= sh0.PlanCacheHits {
		t.Fatal("repeat query did not hit the plan cache")
	}

	if err := sys.Ingest(context.Background(), blanketUpdates(sys, []int{24, 25, 26})); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := sys.FlushIngest(ctx); err != nil {
		t.Fatal(err)
	}
	if sys.DataVersionKey() == key0 {
		t.Fatal("ingest did not change DataVersionKey")
	}

	// The same request now must MISS the plan cache (stale plan would
	// return the pre-ingest region) and reflect the new data.
	sh1 := sys.SharingStats()
	after, err := sys.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if sys.SharingStats().PlanCacheHits != sh1.PlanCacheHits {
		t.Fatal("post-ingest query served from a pre-ingest cached plan")
	}
	if reflect.DeepEqual(before.SegmentIDs, after.SegmentIDs) &&
		reflect.DeepEqual(before.Probabilities, after.Probabilities) {
		t.Fatal("fixture too weak: ingest did not change the answer at all")
	}

	// Compaction bumps the version again (new epoch).
	key1 := sys.DataVersionKey()
	if _, err := sys.CompactIngest(context.Background()); err != nil {
		t.Fatal(err)
	}
	if sys.DataVersionKey() == key1 {
		t.Fatal("compaction did not change DataVersionKey")
	}
}

// TestIngestConcurrentWithQueries races live ingestion, queries, and
// compactions (run under -race): no errors, no torn reads, and the final
// state answers like the offline rebuild.
func TestIngestConcurrentWithQueries(t *testing.T) {
	base := smallSystem(t)
	idx := DefaultIndexConfig()
	idx.PlanCache = -1
	live, err := NewSystemFromData(base.Network(), base.Dataset(), idx)
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	if err := live.Shard(4); err != nil {
		t.Fatal(err)
	}
	if err := live.StartIngest(IngestConfig{FlushInterval: time.Millisecond}); err != nil {
		t.Fatal(err)
	}

	updates := liveFixtureUpdates(live)
	req := ReachRequest(base.BusiestLocation(10*time.Hour), 10*time.Hour, 10*time.Minute, 0.2)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // queriers
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := live.Do(context.Background(), req); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // compactor
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if _, err := live.CompactIngest(context.Background()); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	for off := 0; off < len(updates); off += 50 {
		if err := live.Ingest(context.Background(), updates[off:off+50]); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := live.FlushIngest(ctx); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	if _, err := live.CompactIngest(context.Background()); err != nil {
		t.Fatal(err)
	}

	offline, err := NewSystemFromData(base.Network(), unionDataset(base.Dataset(), updates), idx)
	if err != nil {
		t.Fatal(err)
	}
	defer offline.Close()
	got, err := live.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	want, err := offline.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	regionsEqual(t, "after concurrent ingest", got, want)
}

// TestIngestEpochSwapLeaksNoGoroutines: repeated start/ingest/compact/
// close cycles leave no workers behind.
func TestIngestEpochSwapLeaksNoGoroutines(t *testing.T) {
	base := smallSystem(t)
	idx := DefaultIndexConfig()
	idx.PlanCache = -1
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		live, err := NewSystemFromData(base.Network(), base.Dataset(), idx)
		if err != nil {
			t.Fatal(err)
		}
		if err := live.StartIngest(IngestConfig{Workers: 3, FlushInterval: time.Millisecond}); err != nil {
			t.Fatal(err)
		}
		if err := live.Ingest(context.Background(), liveFixtureUpdates(live)[:200]); err != nil {
			t.Fatal(err)
		}
		if _, err := live.CompactIngest(context.Background()); err != nil {
			t.Fatal(err)
		}
		if err := live.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// Allow stragglers to exit before counting.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after ingest cycles", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// walSegmentFiles lists dir/wal's segment files, sorted by name (epoch
// then sequence order).
func walSegmentFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join(dir, walDirName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "seg-") && strings.HasSuffix(e.Name(), ".log") {
			out = append(out, filepath.Join(dir, walDirName, e.Name()))
		}
	}
	return out
}

// TestIngestWALReplayOnOpen: accepted updates survive a crash (a close
// without compaction) via the segmented WAL, and the reopened system
// folds them back in before serving.
func TestIngestWALReplayOnOpen(t *testing.T) {
	base := smallSystem(t)
	dir := t.TempDir()
	if err := base.Save(dir); err != nil {
		t.Fatal(err)
	}
	idx := DefaultIndexConfig()
	idx.PlanCache = -1

	sys, err := OpenSystem(dir, idx)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.StartIngest(IngestConfig{FlushInterval: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	updates := liveFixtureUpdates(sys)
	if err := sys.Ingest(context.Background(), updates); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := sys.FlushIngest(ctx); err != nil {
		t.Fatal(err)
	}
	req := ReachRequest(sys.BusiestLocation(10*time.Hour), 10*time.Hour, 10*time.Minute, 0.2)
	want, err := sys.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	// "Crash": close without compacting. The WAL segments must hold the
	// updates.
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	segs := walSegmentFiles(t, dir)
	if len(segs) == 0 {
		t.Fatal("no wal segments after close without compaction")
	}
	var walBytes int64
	for _, p := range segs {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		walBytes += fi.Size()
	}
	if walBytes <= int64(len(segs))*24 {
		t.Fatalf("wal segments hold no frames (%d files, %d bytes)", len(segs), walBytes)
	}

	reopened, err := OpenSystem(dir, idx)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	got, err := reopened.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	regionsEqual(t, "replayed reopen", got, want)

	// A durable compaction retires every covered segment; the next open
	// needs no replay and still answers identically.
	if err := reopened.StartIngest(IngestConfig{}); err != nil {
		t.Fatal(err)
	}
	res, err := reopened.CompactIngest(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Durable {
		t.Fatalf("compaction on a dir-backed system not durable: %+v", res)
	}
	if left := walSegmentFiles(t, dir); len(left) != 0 {
		t.Fatalf("wal segments not retired after durable full compaction: %v", left)
	}
	if err := reopened.Close(); err != nil {
		t.Fatal(err)
	}
	cold, err := OpenSystem(dir, idx)
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Close()
	got2, err := cold.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	regionsEqual(t, "post-compaction reopen", got2, want)
}

// TestIngestWALCorruptionFuzz pins damage containment at the system
// level: a flipped bit in one WAL segment is detected by frame CRC on
// reopen and costs only that segment's suffix — the file is truncated
// to its intact prefix (or removed, for header damage), LATER SEGMENTS
// STILL REPLAY, and re-ingesting converges back to the full answer
// (never a silently merged corrupt record).
func TestIngestWALCorruptionFuzz(t *testing.T) {
	base := smallSystem(t)
	dir := t.TempDir()
	if err := base.Save(dir); err != nil {
		t.Fatal(err)
	}
	idx := DefaultIndexConfig()
	idx.PlanCache = -1
	req := ReachRequest(base.BusiestLocation(10*time.Hour), 10*time.Hour, 10*time.Minute, 0.2)

	// Write a multi-segment WAL through a live session (tiny rotation
	// threshold), keep a pristine copy of every segment.
	sys, err := OpenSystem(dir, idx)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.StartIngest(IngestConfig{FlushInterval: time.Millisecond, BatchSize: 16, WALSegmentBytes: 512}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Ingest(context.Background(), liveFixtureUpdates(sys)[:300]); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := sys.FlushIngest(ctx); err != nil {
		t.Fatal(err)
	}
	fullAnswer, err := sys.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	segs := walSegmentFiles(t, dir)
	if len(segs) < 3 {
		t.Fatalf("rotation produced only %d segments, need >= 3 for boundary fuzz", len(segs))
	}
	pristine := make(map[string][]byte, len(segs))
	for _, p := range segs {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		pristine[p] = data
	}
	restore := func() {
		for _, p := range segs {
			if err := os.WriteFile(p, pristine[p], 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}

	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 6; trial++ {
		// Flip a bit in an early segment — never the last, so "later
		// segments still replay" is actually exercised every trial. Even
		// trials target the frame area; odd trials hit the header's
		// magic/version bytes (whole-file drop).
		target := segs[trial%(len(segs)-1)]
		mut := append([]byte(nil), pristine[target]...)
		var bit int
		if trial%2 == 1 {
			bit = rng.Intn(6 * 8)
		} else {
			bit = 24*8 + rng.Intn((len(mut)-24)*8)
		}
		mut[bit/8] ^= 1 << (bit % 8)
		if err := os.WriteFile(target, mut, 0o644); err != nil {
			t.Fatal(err)
		}

		var logBuf bytes.Buffer
		log.SetOutput(&logBuf)
		reopened, err := OpenSystem(dir, idx)
		log.SetOutput(os.Stderr)
		if err != nil {
			t.Fatalf("trial %d (bit %d of %s): reopen failed instead of containing the damage: %v",
				trial, bit, filepath.Base(target), err)
		}
		logs := logBuf.String()
		if !strings.Contains(logs, "corrupt") && !strings.Contains(logs, "unreadable") {
			t.Fatalf("trial %d: corruption not logged:\n%s", trial, logs)
		}
		// Damage is contained to the corrupt segment: a bad header drops
		// the file, a bad frame truncates to the intact prefix; either
		// way every later segment must have survived untouched.
		if fi, err := os.Stat(target); err == nil {
			if fi.Size() > int64(len(pristine[target])) {
				t.Fatalf("trial %d: corrupt segment grew (%d > %d bytes)", trial, fi.Size(), len(pristine[target]))
			}
		} else if !os.IsNotExist(err) {
			t.Fatal(err)
		}
		for _, p := range segs {
			if p == target {
				continue
			}
			data, err := os.ReadFile(p)
			if err != nil {
				t.Fatalf("trial %d: intact segment %s gone: %v", trial, filepath.Base(p), err)
			}
			if !bytes.Equal(data, pristine[p]) {
				t.Fatalf("trial %d: intact segment %s modified by repair", trial, filepath.Base(p))
			}
		}

		// Re-ingesting everything must converge back to the full live
		// answer: the replayed prefix and the later segments are absorbed
		// by set union, the lost suffix is re-supplied.
		if err := reopened.StartIngest(IngestConfig{FlushInterval: time.Millisecond, BatchSize: 16, WALSegmentBytes: 512}); err != nil {
			t.Fatal(err)
		}
		if err := reopened.Ingest(context.Background(), liveFixtureUpdates(reopened)[:300]); err != nil {
			t.Fatal(err)
		}
		ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
		if err := reopened.FlushIngest(ctx2); err != nil {
			cancel2()
			t.Fatal(err)
		}
		cancel2()
		got, err := reopened.Do(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		// Set-union ingest and idempotent min/max bounds make the recovery
		// converge exactly (reach answers never read the mean-speed
		// accumulators, the one statistic replay may double-count).
		regionsEqual(t, fmt.Sprintf("trial %d: recovery", trial), got, fullAnswer)
		if err := reopened.Close(); err != nil {
			t.Fatal(err)
		}
		// The session appended fresh segments and may have truncated the
		// corrupt one; drop everything and restore the pristine set for
		// the next trial.
		for _, p := range walSegmentFiles(t, dir) {
			if err := os.Remove(p); err != nil {
				t.Fatal(err)
			}
		}
		restore()
	}
}
