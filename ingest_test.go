package streach

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"streach/internal/traj"
)

// liveFixtureUpdates is a deterministic batch of position updates from a
// fresh fleet (taxi IDs above anything simulated), concentrated around
// the test query window so the answers actually change.
func liveFixtureUpdates(s *System) []IngestUpdate {
	n := s.Network().NumSegments()
	days := s.Dataset().Days
	var out []IngestUpdate
	for i := 0; i < 600; i++ {
		enterMs := int32((10*3600+600*(i%15))*1000 + (i%7)*1000)
		out = append(out, IngestUpdate{
			TaxiID:    int32(1000 + i%25),
			Day:       i % days,
			SegmentID: int32((i * 13) % n),
			EnterMs:   enterMs,
			ExitMs:    enterMs + 45_000,
			SpeedMps:  float32(4 + i%9),
		})
	}
	return out
}

// blanketUpdates covers every segment on every day at the given slots,
// so any reach query inside that window flips to full-probability
// answers once the batch lands — a guaranteed answer change for
// cache-staleness tests, no matter how dense the base traffic is.
func blanketUpdates(s *System, slots []int) []IngestUpdate {
	n := s.Network().NumSegments()
	days := s.Dataset().Days
	var out []IngestUpdate
	for day := 0; day < days; day++ {
		for seg := 0; seg < n; seg++ {
			for _, slot := range slots {
				ms := int32(slot*300*1000 + 1000)
				out = append(out, IngestUpdate{
					TaxiID: int32(1000 + seg%30), Day: day, SegmentID: int32(seg),
					EnterMs: ms, ExitMs: ms + 20_000, SpeedMps: 8,
				})
			}
		}
	}
	return out
}

// unionDataset builds the dataset an offline rebuild would see: the base
// trajectories plus every ingested update as a one-visit trajectory.
func unionDataset(base *traj.Dataset, updates []IngestUpdate) *traj.Dataset {
	matched := append([]traj.MatchedTrajectory(nil), base.Matched...)
	for _, u := range toIngestUpdates(updates) {
		matched = append(matched, traj.MatchedTrajectory{
			Taxi: u.Taxi, Day: u.Day,
			Visits: []traj.Visit{{Segment: u.Seg, EnterMs: u.EnterMs, ExitMs: u.ExitMs, Speed: u.Speed}},
		})
	}
	return &traj.Dataset{BaseDate: base.BaseDate, Days: base.Days, Matched: matched}
}

func regionsEqual(t *testing.T, label string, got, want *Region) {
	t.Helper()
	if !reflect.DeepEqual(got.SegmentIDs, want.SegmentIDs) {
		t.Fatalf("%s: segment sets differ (%d vs %d segments)", label, len(got.SegmentIDs), len(want.SegmentIDs))
	}
	if !reflect.DeepEqual(got.Probabilities, want.Probabilities) {
		t.Fatalf("%s: probabilities differ", label)
	}
}

// TestIngestEquivalenceOfflineRebuild is the tentpole acceptance test:
// a system answering from base + delta (and, after compaction, from the
// folded blobs) is bit-identical to one built offline over the union of
// base and ingested data — across probability thresholds, query kinds,
// and sharding.
func TestIngestEquivalenceOfflineRebuild(t *testing.T) {
	base := smallSystem(t)
	idx := DefaultIndexConfig()
	idx.PlanCache = -1
	live, err := NewSystemFromData(base.Network(), base.Dataset(), idx)
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	if err := live.StartIngest(IngestConfig{FlushInterval: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	updates := liveFixtureUpdates(live)
	if err := live.Ingest(context.Background(), updates); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := live.FlushIngest(ctx); err != nil {
		t.Fatal(err)
	}

	offline, err := NewSystemFromData(base.Network(), unionDataset(base.Dataset(), updates), idx)
	if err != nil {
		t.Fatal(err)
	}
	defer offline.Close()

	loc := base.BusiestLocation(10 * time.Hour)
	locs := []Location{loc, {loc.Lat + 0.01, loc.Lng}, {loc.Lat, loc.Lng + 0.01}}
	start, dur := 10*time.Hour, 10*time.Minute
	requests := func(prob float64) map[string]Request {
		return map[string]Request{
			"reach":   ReachRequest(loc, start, dur, prob),
			"reverse": ReverseRequest(loc, start, dur, prob),
			"multi":   MultiRequest(locs, start, dur, prob),
		}
	}

	check := func(stage string, sys *System) {
		t.Helper()
		for _, prob := range []float64{0.1, 0.2, 0.4, 0.8} {
			for kind, req := range requests(prob) {
				got, err := sys.Do(context.Background(), req)
				if err != nil {
					t.Fatalf("%s %s p=%.1f: %v", stage, kind, prob, err)
				}
				want, err := offline.Do(context.Background(), req)
				if err != nil {
					t.Fatal(err)
				}
				regionsEqual(t, fmt.Sprintf("%s %s p=%.1f", stage, kind, prob), got, want)
			}
		}
	}

	check("base+delta k=1", live)

	// Sharded execution over the merged reads.
	if err := live.Shard(4); err != nil {
		t.Fatal(err)
	}
	check("base+delta k=4", live)

	res, err := live.CompactIngest(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Keys == 0 || res.Epoch != 1 {
		t.Fatalf("compaction result: %+v", res)
	}
	if res.Durable {
		t.Fatal("directory-less system reported a durable compaction")
	}
	if live.IndexEpoch() != 1 {
		t.Fatalf("epoch = %d after compaction", live.IndexEpoch())
	}
	check("post-compaction k=4", live)
	if err := live.Shard(1); err != nil {
		t.Fatal(err)
	}
	check("post-compaction k=1", live)

	st := live.IngestStats()
	if st.DirtyKeys != 0 || st.PendingObs != 0 {
		t.Fatalf("delta not drained: %+v", st)
	}
	if st.Applied != int64(len(updates)) || st.Dropped != 0 {
		t.Fatalf("writer stats: %+v (want %d applied)", st, len(updates))
	}
}

// TestIngestVersionKeysInvalidateCaches pins satellite (a): the plan
// cache and the serve coalescer key on DataVersionKey, so a cached
// answer can never outlive the data it was computed from.
func TestIngestVersionKeysInvalidateCaches(t *testing.T) {
	base := smallSystem(t)
	idx := DefaultIndexConfig() // plan cache ON
	sys, err := NewSystemFromData(base.Network(), base.Dataset(), idx)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.StartIngest(IngestConfig{FlushInterval: time.Millisecond}); err != nil {
		t.Fatal(err)
	}

	key0 := sys.DataVersionKey()
	// Query an off-peak window, then blanket it with live traffic: the
	// answer is guaranteed to change, so a stale cached plan is caught.
	req := ReachRequest(base.BusiestLocation(10*time.Hour), 2*time.Hour, 10*time.Minute, 0.2)
	before, err := sys.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	// Same request again: must hit the plan cache.
	sh0 := sys.SharingStats()
	if _, err := sys.Do(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if sys.SharingStats().PlanCacheHits <= sh0.PlanCacheHits {
		t.Fatal("repeat query did not hit the plan cache")
	}

	if err := sys.Ingest(context.Background(), blanketUpdates(sys, []int{24, 25, 26})); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := sys.FlushIngest(ctx); err != nil {
		t.Fatal(err)
	}
	if sys.DataVersionKey() == key0 {
		t.Fatal("ingest did not change DataVersionKey")
	}

	// The same request now must MISS the plan cache (stale plan would
	// return the pre-ingest region) and reflect the new data.
	sh1 := sys.SharingStats()
	after, err := sys.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if sys.SharingStats().PlanCacheHits != sh1.PlanCacheHits {
		t.Fatal("post-ingest query served from a pre-ingest cached plan")
	}
	if reflect.DeepEqual(before.SegmentIDs, after.SegmentIDs) &&
		reflect.DeepEqual(before.Probabilities, after.Probabilities) {
		t.Fatal("fixture too weak: ingest did not change the answer at all")
	}

	// Compaction bumps the version again (new epoch).
	key1 := sys.DataVersionKey()
	if _, err := sys.CompactIngest(context.Background()); err != nil {
		t.Fatal(err)
	}
	if sys.DataVersionKey() == key1 {
		t.Fatal("compaction did not change DataVersionKey")
	}
}

// TestIngestConcurrentWithQueries races live ingestion, queries, and
// compactions (run under -race): no errors, no torn reads, and the final
// state answers like the offline rebuild.
func TestIngestConcurrentWithQueries(t *testing.T) {
	base := smallSystem(t)
	idx := DefaultIndexConfig()
	idx.PlanCache = -1
	live, err := NewSystemFromData(base.Network(), base.Dataset(), idx)
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	if err := live.Shard(4); err != nil {
		t.Fatal(err)
	}
	if err := live.StartIngest(IngestConfig{FlushInterval: time.Millisecond}); err != nil {
		t.Fatal(err)
	}

	updates := liveFixtureUpdates(live)
	req := ReachRequest(base.BusiestLocation(10*time.Hour), 10*time.Hour, 10*time.Minute, 0.2)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // queriers
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := live.Do(context.Background(), req); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // compactor
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if _, err := live.CompactIngest(context.Background()); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	for off := 0; off < len(updates); off += 50 {
		if err := live.Ingest(context.Background(), updates[off:off+50]); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := live.FlushIngest(ctx); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	if _, err := live.CompactIngest(context.Background()); err != nil {
		t.Fatal(err)
	}

	offline, err := NewSystemFromData(base.Network(), unionDataset(base.Dataset(), updates), idx)
	if err != nil {
		t.Fatal(err)
	}
	defer offline.Close()
	got, err := live.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	want, err := offline.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	regionsEqual(t, "after concurrent ingest", got, want)
}

// TestIngestEpochSwapLeaksNoGoroutines: repeated start/ingest/compact/
// close cycles leave no workers behind.
func TestIngestEpochSwapLeaksNoGoroutines(t *testing.T) {
	base := smallSystem(t)
	idx := DefaultIndexConfig()
	idx.PlanCache = -1
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		live, err := NewSystemFromData(base.Network(), base.Dataset(), idx)
		if err != nil {
			t.Fatal(err)
		}
		if err := live.StartIngest(IngestConfig{Workers: 3, FlushInterval: time.Millisecond}); err != nil {
			t.Fatal(err)
		}
		if err := live.Ingest(context.Background(), liveFixtureUpdates(live)[:200]); err != nil {
			t.Fatal(err)
		}
		if _, err := live.CompactIngest(context.Background()); err != nil {
			t.Fatal(err)
		}
		if err := live.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// Allow stragglers to exit before counting.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after ingest cycles", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestIngestWALReplayOnOpen: accepted updates survive a crash (a close
// without compaction) via the WAL, and the reopened system folds them
// back in before serving.
func TestIngestWALReplayOnOpen(t *testing.T) {
	base := smallSystem(t)
	dir := t.TempDir()
	if err := base.Save(dir); err != nil {
		t.Fatal(err)
	}
	idx := DefaultIndexConfig()
	idx.PlanCache = -1

	sys, err := OpenSystem(dir, idx)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.StartIngest(IngestConfig{FlushInterval: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	updates := liveFixtureUpdates(sys)
	if err := sys.Ingest(context.Background(), updates); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := sys.FlushIngest(ctx); err != nil {
		t.Fatal(err)
	}
	req := ReachRequest(sys.BusiestLocation(10*time.Hour), 10*time.Hour, 10*time.Minute, 0.2)
	want, err := sys.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	// "Crash": close without compacting. The WAL must hold the updates.
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(filepath.Join(dir, fileIngestDelta)); err != nil || fi.Size() <= 6 {
		t.Fatalf("wal missing or empty after close: %v", err)
	}

	reopened, err := OpenSystem(dir, idx)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	got, err := reopened.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	regionsEqual(t, "replayed reopen", got, want)

	// A durable compaction truncates the WAL; the next open needs no
	// replay and still answers identically.
	if err := reopened.StartIngest(IngestConfig{}); err != nil {
		t.Fatal(err)
	}
	res, err := reopened.CompactIngest(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Durable {
		t.Fatalf("compaction on a dir-backed system not durable: %+v", res)
	}
	if fi, err := os.Stat(filepath.Join(dir, fileIngestDelta)); err != nil || fi.Size() > 6 {
		t.Fatalf("wal not truncated after durable compaction (size %d, err %v)", fi.Size(), err)
	}
	if err := reopened.Close(); err != nil {
		t.Fatal(err)
	}
	cold, err := OpenSystem(dir, idx)
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Close()
	got2, err := cold.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	regionsEqual(t, "post-compaction reopen", got2, want)
}

// TestIngestWALCorruptionFuzz pins satellite (d) at the system level: a
// flipped bit anywhere in the ingest WAL is detected by CRC on reopen,
// logged, and the file dropped — the system comes up serving the base
// data (never a silently merged corrupt record) and accepts re-ingest.
func TestIngestWALCorruptionFuzz(t *testing.T) {
	base := smallSystem(t)
	dir := t.TempDir()
	if err := base.Save(dir); err != nil {
		t.Fatal(err)
	}
	idx := DefaultIndexConfig()
	idx.PlanCache = -1
	req := ReachRequest(base.BusiestLocation(10*time.Hour), 10*time.Hour, 10*time.Minute, 0.2)

	// Write a WAL through a live session, keep a pristine copy.
	sys, err := OpenSystem(dir, idx)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.StartIngest(IngestConfig{FlushInterval: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Ingest(context.Background(), liveFixtureUpdates(sys)[:100]); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := sys.FlushIngest(ctx); err != nil {
		t.Fatal(err)
	}
	fullAnswer, err := sys.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, fileIngestDelta)
	pristine, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 4; trial++ {
		mut := append([]byte(nil), pristine...)
		bit := rng.Intn(len(mut) * 8)
		mut[bit/8] ^= 1 << (bit % 8)
		if err := os.WriteFile(walPath, mut, 0o644); err != nil {
			t.Fatal(err)
		}

		var logBuf bytes.Buffer
		log.SetOutput(&logBuf)
		reopened, err := OpenSystem(dir, idx)
		log.SetOutput(os.Stderr)
		if err != nil {
			t.Fatalf("bit %d: reopen failed instead of dropping the wal: %v", bit, err)
		}
		if !strings.Contains(logBuf.String(), "ingest wal corrupt") {
			t.Fatalf("bit %d: corruption not logged:\n%s", bit, logBuf.String())
		}
		if _, err := os.Stat(walPath); !os.IsNotExist(err) {
			t.Fatalf("bit %d: corrupt wal not dropped (err %v)", bit, err)
		}

		// Whatever intact prefix was replayed came from pristine batches;
		// the rest is gone. Re-ingesting everything must converge back to
		// the full live answer (set union absorbs the replayed prefix).
		if err := reopened.StartIngest(IngestConfig{FlushInterval: time.Millisecond}); err != nil {
			t.Fatal(err)
		}
		if err := reopened.Ingest(context.Background(), liveFixtureUpdates(reopened)[:100]); err != nil {
			t.Fatal(err)
		}
		ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
		if err := reopened.FlushIngest(ctx2); err != nil {
			cancel2()
			t.Fatal(err)
		}
		cancel2()
		got, err := reopened.Do(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		// Set-union ingest and idempotent min/max bounds make the recovery
		// converge exactly (reach answers never read the mean-speed
		// accumulators, the one statistic replay may double-count).
		regionsEqual(t, fmt.Sprintf("bit %d: recovery", bit), got, fullAnswer)
		if err := reopened.Close(); err != nil {
			t.Fatal(err)
		}
		// Closing wrote a fresh WAL with the re-ingested updates; restore
		// the pristine file for the next trial.
		if err := os.WriteFile(walPath, pristine, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
