package streach

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"
)

var (
	shardedOnce sync.Once
	shardedSys  *System
	shardedErr  error
)

// shardedSystem builds a 4-shard system over the shared fixture's
// network and dataset, so sharded and unsharded answers come from the
// same world. The plan cache stays off for the equivalence tests (every
// Do must really run the scatter-gather path).
func shardedSystem(t *testing.T) *System {
	t.Helper()
	base := smallSystem(t)
	shardedOnce.Do(func() {
		idx := DefaultIndexConfig()
		idx.PlanCache = -1
		idx.Shards = 4
		shardedSys, shardedErr = NewSystemFromData(base.Network(), base.Dataset(), idx)
	})
	if shardedErr != nil {
		t.Fatal(shardedErr)
	}
	return shardedSys
}

func sameRegion(t *testing.T, name string, got, want *Region) {
	t.Helper()
	if !reflect.DeepEqual(got.SegmentIDs, want.SegmentIDs) {
		t.Fatalf("%s: segments differ (%d vs %d)", name, len(got.SegmentIDs), len(want.SegmentIDs))
	}
	if !reflect.DeepEqual(got.Probabilities, want.Probabilities) {
		t.Fatalf("%s: probabilities differ", name)
	}
	if got.RoadKm != want.RoadKm {
		t.Fatalf("%s: road km %v vs %v", name, got.RoadKm, want.RoadKm)
	}
	if got.Metrics.Evaluated != want.Metrics.Evaluated {
		t.Fatalf("%s: evaluated %d vs %d", name, got.Metrics.Evaluated, want.Metrics.Evaluated)
	}
	if got.Metrics.MaxRegion != want.Metrics.MaxRegion || got.Metrics.MinRegion != want.Metrics.MinRegion {
		t.Fatalf("%s: bounding regions (%d,%d) vs (%d,%d)", name,
			got.Metrics.MaxRegion, got.Metrics.MinRegion, want.Metrics.MaxRegion, want.Metrics.MinRegion)
	}
}

// TestShardedSystemEquivalence pins the facade-level acceptance
// criterion: a sharded System answers every request kind and algorithm
// bit-identically to an unsharded one, at four thresholds.
func TestShardedSystemEquivalence(t *testing.T) {
	base := smallSystem(t)
	sharded := shardedSystem(t)
	if sharded.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", sharded.Shards())
	}
	loc := base.BusiestLocation(11 * time.Hour)
	multi := []Location{loc, {Lat: loc.Lat + 0.01, Lng: loc.Lng + 0.01}}

	cases := []struct {
		name string
		req  Request
		opts []Option
	}{
		{"reach", ReachRequest(loc, 11*time.Hour, 10*time.Minute, 0), nil},
		{"reach-es", ReachRequest(loc, 11*time.Hour, 8*time.Minute, 0), []Option{WithAlgorithm(AlgoExhaustive)}},
		{"reach-verifyall", ReachRequest(loc, 11*time.Hour, 10*time.Minute, 0), []Option{WithVerifyAll(true)}},
		{"reverse", ReverseRequest(loc, 11*time.Hour, 10*time.Minute, 0), nil},
		{"reverse-es", ReverseRequest(loc, 11*time.Hour, 8*time.Minute, 0), []Option{WithAlgorithm(AlgoExhaustive)}},
		{"multi", MultiRequest(multi, 11*time.Hour, 10*time.Minute, 0), nil},
		{"multi-seq", MultiRequest(multi, 11*time.Hour, 10*time.Minute, 0), []Option{WithAlgorithm(AlgoSequential)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, prob := range []float64{0.05, 0.2, 0.5, 0.9} {
				req := tc.req
				req.Prob = prob
				want, err := base.Do(context.Background(), req, tc.opts...)
				if err != nil {
					t.Fatal(err)
				}
				got, err := sharded.Do(context.Background(), req, tc.opts...)
				if err != nil {
					t.Fatal(err)
				}
				sameRegion(t, tc.name, got, want)
			}
		})
	}
}

// TestShardedDoBatch: batch execution over a sharded system — shared
// groups riding cluster plans — must match unsharded batch execution.
func TestShardedDoBatch(t *testing.T) {
	base := smallSystem(t)
	sharded := shardedSystem(t)
	loc := base.BusiestLocation(11 * time.Hour)
	var reqs []Request
	for i := 0; i < 12; i++ {
		reqs = append(reqs, ReachRequest(loc, 11*time.Hour, 10*time.Minute, 0.1+0.05*float64(i%6)))
	}
	want := base.DoBatch(context.Background(), reqs)
	got := sharded.DoBatch(context.Background(), reqs)
	for i := range reqs {
		if want[i].Err != nil || got[i].Err != nil {
			t.Fatalf("request %d: errs %v / %v", i, want[i].Err, got[i].Err)
		}
		sameRegion(t, "batch", got[i].Region, want[i].Region)
	}
}

// TestShardedRoute: route queries bypass the cluster and still answer.
func TestShardedRoute(t *testing.T) {
	base := smallSystem(t)
	sharded := shardedSystem(t)
	from := base.BusiestLocation(8 * time.Hour)
	to := base.BusiestLocation(18 * time.Hour)
	want, err := base.Do(context.Background(), RouteRequest(from, to, 8*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	got, err := sharded.Do(context.Background(), RouteRequest(from, to, 8*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Route.SegmentIDs, want.Route.SegmentIDs) {
		t.Fatal("sharded route differs from unsharded")
	}
}

// TestShardStats: the partition must cover the network, and query work
// must show up attributed to shards.
func TestShardStats(t *testing.T) {
	sharded := shardedSystem(t)
	base := smallSystem(t)
	if base.ShardStats() != nil {
		t.Fatal("unsharded system reports shard stats")
	}
	loc := base.BusiestLocation(11 * time.Hour)
	if _, err := sharded.Do(context.Background(), ReachRequest(loc, 11*time.Hour, 10*time.Minute, 0.2)); err != nil {
		t.Fatal(err)
	}
	stats := sharded.ShardStats()
	if len(stats) != 4 {
		t.Fatalf("ShardStats len = %d, want 4", len(stats))
	}
	segs, rows, verified := 0, int64(0), int64(0)
	for _, st := range stats {
		segs += st.Segments
		rows += st.RowsFetched
		verified += st.CandidatesVerified
	}
	if segs != sharded.Network().NumSegments() {
		t.Fatalf("shard segment counts sum to %d, want %d", segs, sharded.Network().NumSegments())
	}
	if rows == 0 || verified == 0 {
		t.Fatalf("no sharded work recorded (rows=%d verified=%d)", rows, verified)
	}
}

// TestShardReshard: Shard(k) flips execution modes in place; k<=1
// restores single-engine execution with identical answers.
func TestShardReshard(t *testing.T) {
	base := smallSystem(t)
	idx := DefaultIndexConfig()
	idx.PlanCache = -1
	sys, err := NewSystemFromData(base.Network(), base.Dataset(), idx)
	if err != nil {
		t.Fatal(err)
	}
	loc := base.BusiestLocation(11 * time.Hour)
	req := ReachRequest(loc, 11*time.Hour, 10*time.Minute, 0.2)
	want, err := sys.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Shard(3); err != nil {
		t.Fatal(err)
	}
	if sys.Shards() != 3 {
		t.Fatalf("Shards() = %d after Shard(3)", sys.Shards())
	}
	got, err := sys.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	sameRegion(t, "resharded", got, want)
	if err := sys.Shard(1); err != nil {
		t.Fatal(err)
	}
	if sys.Shards() != 1 {
		t.Fatalf("Shards() = %d after Shard(1)", sys.Shards())
	}
	got, err = sys.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	sameRegion(t, "unsharded-again", got, want)
}

// TestOpenSystemSharded: a reopened save directory honours
// IndexConfig.Shards (and the plan-cache default), answering
// bit-identically to the live system it was saved from.
func TestOpenSystemSharded(t *testing.T) {
	base := smallSystem(t)
	dir := t.TempDir()
	if err := base.Save(dir); err != nil {
		t.Fatal(err)
	}
	idx := DefaultIndexConfig()
	idx.Shards = 2
	reopened, err := OpenSystem(dir, idx)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if reopened.Shards() != 2 {
		t.Fatalf("reopened Shards() = %d, want 2", reopened.Shards())
	}
	if reopened.plans == nil {
		t.Fatal("reopened system has no plan cache despite the documented default")
	}
	loc := base.BusiestLocation(11 * time.Hour)
	req := ReachRequest(loc, 11*time.Hour, 10*time.Minute, 0.2)
	want, err := base.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := reopened.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	sameRegion(t, "reopened-sharded", got, want)
}
