package streach

import (
	"time"

	"streach/internal/core"
	"streach/internal/shard"
)

// Overload self-protection knobs: per-shard circuit breakers and hedged
// scatter verification. Both default off; enable via IndexConfig or the
// System methods below. See DESIGN.md §12 for the model.

// BreakerConfig tunes the per-shard circuit breakers of a sharded
// system. A shard whose recent scatter/gather calls keep failing trips
// its breaker open; while open, queries short-circuit the shard —
// degraded coverage under WithPartialResults, an immediate typed
// ShardFailure otherwise — instead of paying the shard budget on every
// query. After Cooldown the breaker admits one probe call whose outcome
// decides between closing and re-opening. The zero value disables
// breakers; Enabled with zero fields uses the defaults.
type BreakerConfig struct {
	// Enabled turns the breakers on.
	Enabled bool
	// Window is the rolling outcome window per shard (default 16).
	Window int
	// FailureRatio is the failure fraction over the window that trips
	// the breaker (default 0.5).
	FailureRatio float64
	// MinSamples is the minimum outcomes before the ratio is trusted
	// (default 4).
	MinSamples int
	// Cooldown is how long an open breaker rejects before half-opening
	// (default 2s).
	Cooldown time.Duration
}

func (c BreakerConfig) internal() shard.BreakerConfig {
	return shard.BreakerConfig{
		Enabled:      c.Enabled,
		Window:       c.Window,
		FailureRatio: c.FailureRatio,
		MinSamples:   c.MinSamples,
		Cooldown:     c.Cooldown,
	}
}

// HedgeConfig tunes hedged scatter verification: when a shard's verify
// slice runs past a latency-quantile trigger, a hedge attempt races it
// over the same positions and the first success wins (the loser is
// cancelled and returns its scratch) — answers stay bit-identical
// either way. Hedges draw from a cluster-wide budget so they can never
// amplify an overload. The zero value disables hedging; Enabled with
// zero fields uses the defaults.
type HedgeConfig struct {
	// Enabled turns hedging on.
	Enabled bool
	// Trigger is the floor latency before a hedge launches (default
	// 25ms); the effective trigger is the larger of this and 2× the
	// shard's recent p95.
	Trigger time.Duration
	// MaxOutstanding bounds concurrent hedges cluster-wide (default
	// half the shard count, at least 1).
	MaxOutstanding int
}

func (c HedgeConfig) internal() shard.HedgeConfig {
	return shard.HedgeConfig{
		Enabled:        c.Enabled,
		Trigger:        c.Trigger,
		MaxOutstanding: c.MaxOutstanding,
	}
}

// ConfigureBreakers applies cfg to the current cluster (if sharded) and
// to every later Shard call. Reconfiguring resets all breakers to
// closed.
func (s *System) ConfigureBreakers(cfg BreakerConfig) {
	s.breakerCfg = cfg
	if c := s.cluster.Load(); c != nil {
		c.ConfigureBreakers(cfg.internal())
	}
}

// SetHedging applies cfg to the current cluster (if sharded) and to
// every later Shard call.
func (s *System) SetHedging(cfg HedgeConfig) {
	s.hedgeCfg = cfg
	if c := s.cluster.Load(); c != nil {
		c.SetHedging(cfg.internal())
	}
}

// ResilienceStats aggregates the system's self-protection counters;
// zero on an unsharded system.
type ResilienceStats struct {
	// BreakerOpens counts breaker trips (closed/half-open → open).
	BreakerOpens int64
	// BreakerShortCircuits counts shard calls rejected by an open
	// breaker.
	BreakerShortCircuits int64
	// HedgesLaunched counts hedge attempts started; HedgeWins those
	// that finished before their primary.
	HedgesLaunched, HedgeWins int64
}

// ResilienceStats snapshots the self-protection counters.
func (s *System) ResilienceStats() ResilienceStats {
	c := s.cluster.Load()
	if c == nil {
		return ResilienceStats{}
	}
	r := c.Resilience()
	return ResilienceStats{
		BreakerOpens:         r.BreakerOpens,
		BreakerShortCircuits: r.BreakerShortCircuits,
		HedgesLaunched:       r.HedgesLaunched,
		HedgeWins:            r.HedgeWins,
	}
}

// ScratchStat is one engine's scratch-pool counter snapshot (see
// ScratchStats).
type ScratchStat struct {
	// RegionGets/RegionPuts and BitsetGets/BitsetPuts count pooled
	// region and bitset checkouts and returns.
	RegionGets, RegionPuts int64
	BitsetGets, BitsetPuts int64
}

// Balanced reports whether every checkout has been returned.
func (s ScratchStat) Balanced() bool {
	return s.RegionGets == s.RegionPuts && s.BitsetGets == s.BitsetPuts
}

// ScratchStats snapshots the scratch-pool counters of the base engine
// (index 0) and, on a sharded system, the cluster planner and every
// shard engine after it. With no query in flight every snapshot must be
// Balanced() — including after shed, cancelled, hedged, or failed
// queries; an imbalance is a leaked pooled region or bitset on some
// error path.
func (s *System) ScratchStats() []ScratchStat {
	out := []ScratchStat{fromCoreScratch(s.engine.ScratchStats())}
	if c := s.cluster.Load(); c != nil {
		for _, st := range c.ScratchStats() {
			out = append(out, fromCoreScratch(st))
		}
	}
	return out
}

func fromCoreScratch(st core.ScratchStats) ScratchStat {
	return ScratchStat{
		RegionGets: st.RegionGets,
		RegionPuts: st.RegionPuts,
		BitsetGets: st.BitsetGets,
		BitsetPuts: st.BitsetPuts,
	}
}
