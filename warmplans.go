package streach

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Warm-plan pipeline: the plan cache only pays off after the first
// query of each shape has eaten a cold bounding + verification pass,
// and every compaction epoch swap invalidates the whole cache again
// (the data-version key moves). This file closes the gap: the system
// records the shape — kind, algorithm, result-affecting option bits,
// window, locations; never results — of every plan-cache miss in a
// small ring, persists the ring to dir/planshapes.bin alongside the
// indexes, and re-plans the top-N most frequent shapes in the
// background after an open or a compaction, so steady traffic lands on
// warm plans instead of paying the cold-start tail.

const (
	// planShapeRingCap bounds the recorded shape ring; with the
	// location cap below the persisted file stays well under the read
	// cap even when full.
	planShapeRingCap = 256
	// planShapeMaxLocs skips recording multi-queries beyond this many
	// locations — rare shapes whose encoded size isn't worth the ring
	// space.
	planShapeMaxLocs = 8
	// planShapesMaxBytes caps how much of planshapes.bin a load will
	// read: the file is a hint, and a runaway size is corruption.
	planShapesMaxBytes = 256 << 10

	planShapesMagic   = "SPSH"
	planShapesVersion = 1
)

var planShapesCRC = crc32.MakeTable(crc32.Castagnoli)

// planShape is one recorded query shape: everything groupKey
// canonicalises except the probability threshold (the axis plans are
// shared across), so re-planning a shape reproduces the exact cache key
// live traffic will ask for.
type planShape struct {
	Kind       Kind
	Algorithm  Algorithm
	OptionBits uint8
	Start      time.Duration
	Duration   time.Duration
	Locations  []Location
}

// shapeOptionBits packs the result-affecting engine options the same
// way engineOptionBits does, as a byte for the shape encoding.
func shapeOptionBits(qo queryOptions) uint8 {
	var bits uint8
	if qo.engine.VerifyAll {
		bits |= 1
	}
	if qo.engine.EarlyStop {
		bits |= 2
	}
	if qo.engine.NoVisitedSet {
		bits |= 4
	}
	if qo.engine.NoOverlapFilter {
		bits |= 8
	}
	return bits
}

// shapeRecorder is the fixed-capacity ring of recent plan-cache-miss
// shapes, deduplicated at read time by frequency. Safe for concurrent
// record/snapshot.
type shapeRecorder struct {
	mu     sync.Mutex
	shapes []planShape // ring storage, len == cap once full
	keys   []string    // parallel groupKeys (no data-version suffix)
	next   int         // next write position
	full   bool
}

func newShapeRecorder() *shapeRecorder { return &shapeRecorder{} }

func (r *shapeRecorder) record(shape planShape, key string) {
	if len(shape.Locations) == 0 || len(shape.Locations) > planShapeMaxLocs {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.shapes) < planShapeRingCap {
		r.shapes = append(r.shapes, shape)
		r.keys = append(r.keys, key)
		r.next = len(r.shapes) % planShapeRingCap
		r.full = len(r.shapes) == planShapeRingCap
		return
	}
	r.shapes[r.next] = shape
	r.keys[r.next] = key
	r.next = (r.next + 1) % planShapeRingCap
}

// snapshot returns the ring in chronological order (oldest first).
func (r *shapeRecorder) snapshot() ([]planShape, []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.shapes)
	shapes := make([]planShape, 0, n)
	keys := make([]string, 0, n)
	start := 0
	if r.full {
		start = r.next
	}
	for i := 0; i < n; i++ {
		j := (start + i) % n
		shapes = append(shapes, r.shapes[j])
		keys = append(keys, r.keys[j])
	}
	return shapes, keys
}

// top returns up to n distinct shapes ordered by ring frequency
// (duplicate-heavy traffic floats to the front), breaking ties toward
// the most recently recorded.
func (r *shapeRecorder) top(n int) []planShape {
	shapes, keys := r.snapshot()
	count := map[string]int{}
	lastSeen := map[string]int{}
	firstIdx := map[string]int{}
	for i, k := range keys {
		count[k]++
		lastSeen[k] = i
		if _, ok := firstIdx[k]; !ok {
			firstIdx[k] = i
		}
	}
	distinct := make([]string, 0, len(count))
	for k := range count {
		distinct = append(distinct, k)
	}
	// Frequency desc, recency desc: insertion sort keeps this simple
	// for a ≤256-entry ring.
	for i := 1; i < len(distinct); i++ {
		for j := i; j > 0; j-- {
			a, b := distinct[j-1], distinct[j]
			if count[b] > count[a] || (count[b] == count[a] && lastSeen[b] > lastSeen[a]) {
				distinct[j-1], distinct[j] = b, a
			} else {
				break
			}
		}
	}
	if n > len(distinct) {
		n = len(distinct)
	}
	out := make([]planShape, 0, n)
	for _, k := range distinct[:n] {
		out = append(out, shapes[firstIdx[k]])
	}
	return out
}

// load replaces the ring contents (used by the planshapes.bin loader).
func (r *shapeRecorder) load(shapes []planShape, keys []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(shapes) > planShapeRingCap {
		shapes = shapes[len(shapes)-planShapeRingCap:]
		keys = keys[len(keys)-planShapeRingCap:]
	}
	r.shapes = append([]planShape(nil), shapes...)
	r.keys = append([]string(nil), keys...)
	r.full = len(r.shapes) == planShapeRingCap
	r.next = len(r.shapes) % planShapeRingCap
}

// encodePlanShapes serialises the ring: "SPSH" | version u16 | count
// u16 | shapes | crc32c of everything before it. Shapes carry no query
// results — only the request parameters needed to rebuild a plan.
func encodePlanShapes(shapes []planShape) []byte {
	var buf []byte
	buf = append(buf, planShapesMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, planShapesVersion)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(shapes)))
	for _, sh := range shapes {
		buf = append(buf, byte(sh.Kind), byte(sh.Algorithm), sh.OptionBits)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(sh.Start))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(sh.Duration))
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(sh.Locations)))
		for _, l := range sh.Locations {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(l.Lat))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(l.Lng))
		}
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, planShapesCRC))
}

// decodePlanShapes validates and decodes a planshapes.bin payload.
// Every failure is an error — the caller drops the ring and logs, it
// never fails the open.
func decodePlanShapes(buf []byte) ([]planShape, error) {
	if len(buf) < len(planShapesMagic)+2+2+4 {
		return nil, fmt.Errorf("truncated (%d bytes)", len(buf))
	}
	body, sum := buf[:len(buf)-4], binary.LittleEndian.Uint32(buf[len(buf)-4:])
	if got := crc32.Checksum(body, planShapesCRC); got != sum {
		return nil, fmt.Errorf("checksum mismatch (%08x != %08x)", got, sum)
	}
	if string(body[:4]) != planShapesMagic {
		return nil, fmt.Errorf("bad magic %q", body[:4])
	}
	if v := binary.LittleEndian.Uint16(body[4:]); v != planShapesVersion {
		return nil, fmt.Errorf("unsupported version %d", v)
	}
	count := int(binary.LittleEndian.Uint16(body[6:]))
	if count > planShapeRingCap {
		return nil, fmt.Errorf("shape count %d exceeds ring capacity %d", count, planShapeRingCap)
	}
	p := body[8:]
	shapes := make([]planShape, 0, count)
	for i := 0; i < count; i++ {
		if len(p) < 3+8+8+2 {
			return nil, fmt.Errorf("shape %d truncated", i)
		}
		sh := planShape{
			Kind:       Kind(p[0]),
			Algorithm:  Algorithm(p[1]),
			OptionBits: p[2],
			Start:      time.Duration(binary.LittleEndian.Uint64(p[3:])),
			Duration:   time.Duration(binary.LittleEndian.Uint64(p[11:])),
		}
		nloc := int(binary.LittleEndian.Uint16(p[19:]))
		p = p[21:]
		if nloc == 0 || nloc > planShapeMaxLocs {
			return nil, fmt.Errorf("shape %d has %d locations (cap %d)", i, nloc, planShapeMaxLocs)
		}
		if len(p) < nloc*16 {
			return nil, fmt.Errorf("shape %d locations truncated", i)
		}
		for j := 0; j < nloc; j++ {
			sh.Locations = append(sh.Locations, Location{
				Lat: math.Float64frombits(binary.LittleEndian.Uint64(p[j*16:])),
				Lng: math.Float64frombits(binary.LittleEndian.Uint64(p[j*16+8:])),
			})
		}
		p = p[nloc*16:]
		if err := validatePlanShape(sh); err != nil {
			return nil, fmt.Errorf("shape %d: %w", i, err)
		}
		shapes = append(shapes, sh)
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%d trailing bytes", len(p))
	}
	return shapes, nil
}

// validatePlanShape rejects decoded shapes a bit-flip turned
// semantically invalid even though the CRC (vanishingly unlikely) or a
// hand-edited file let them through.
func validatePlanShape(sh planShape) error {
	switch sh.Kind {
	case KindReach, KindReverse, KindMulti:
	default:
		return fmt.Errorf("kind %d not warmable", int(sh.Kind))
	}
	if sh.Duration <= 0 || sh.Start < 0 || sh.Start >= 24*time.Hour {
		return fmt.Errorf("invalid window %v+%v", sh.Start, sh.Duration)
	}
	return nil
}

// recordPlanShape notes one plan-cache miss's shape in the ring (called
// from acquirePlan; only cacheable shapes reach it).
func (s *System) recordPlanShape(req Request, qo queryOptions) {
	if s.shapes == nil {
		return
	}
	shape := planShape{
		Kind:       req.Kind,
		Algorithm:  qo.algorithm,
		OptionBits: shapeOptionBits(qo),
		Start:      req.Start,
		Duration:   req.Duration,
		Locations:  append([]Location(nil), req.Locations...),
	}
	s.shapes.record(shape, groupKey(req, qo))
}

// shapeQuery rebuilds the request and resolved options a recorded shape
// was planned under: the system's engine options with the shape's
// result-affecting bits applied, so the rebuilt groupKey is
// byte-identical to the one live traffic computes.
func (s *System) shapeQuery(sh planShape) (Request, queryOptions) {
	req := Request{
		Kind:      sh.Kind,
		Locations: sh.Locations,
		Start:     sh.Start,
		Duration:  sh.Duration,
		Prob:      0.5, // plans are threshold-independent; any valid value
	}
	qo := queryOptions{algorithm: sh.Algorithm, engine: s.engine.Options()}
	base := shapeOptionBits(qo)
	qo.engine.VerifyAll = sh.OptionBits&1 != 0
	qo.engine.EarlyStop = sh.OptionBits&2 != 0
	qo.engine.NoVisitedSet = sh.OptionBits&4 != 0
	qo.engine.NoOverlapFilter = sh.OptionBits&8 != 0
	qo.engineDirty = shapeOptionBits(qo) != base
	return req, qo
}

// WarmPlans re-plans up to topN of the most frequent recorded shapes
// and parks the plans in the shared-plan cache under the current data
// version, so the next matching query is a cache hit instead of a cold
// bounding + verification pass. Shapes already cached are skipped;
// shapes that no longer plan (e.g. recorded against a different
// network) are dropped silently. Returns how many plans were built.
// Safe to call concurrently with live queries.
func (s *System) WarmPlans(ctx context.Context, topN int) (int, error) {
	if s.plans == nil || s.shapes == nil || topN <= 0 {
		return 0, nil
	}
	warmed := 0
	for _, sh := range s.shapes.top(topN) {
		if err := ctx.Err(); err != nil {
			return warmed, err
		}
		if !groupable(s.shapeQuery(sh)) {
			continue
		}
		req, qo := s.shapeQuery(sh)
		key := groupKey(req, qo) + "|" + s.DataVersionKey()
		if pl, ok := s.plans.take(key); ok {
			s.plans.put(key, pl) // already warm
			continue
		}
		plan, err := s.newPlan(ctx, req, qo)
		if err != nil {
			continue
		}
		s.plans.put(key, plan)
		s.sharing.plansWarmed.Add(1)
		warmed++
	}
	return warmed, nil
}

// EnableWarmPlanning turns on background plan warming: the top topN
// recorded shapes are re-planned now and again after every compaction
// epoch swap (whose data-version bump invalidates all cached plans).
// topN <= 0 disables. The plan cache is grown to hold at least topN
// plans — warming more shapes than the LRU can park would evict its
// own work. The background pass is skipped while one is already
// running and is cancelled by Close.
func (s *System) EnableWarmPlanning(topN int) {
	s.plans.grow(topN)
	s.warmN.Store(int32(topN))
	s.warmPlansAsync()
}

// warmPlansAsync kicks one background warm pass if warming is enabled
// and none is in flight.
func (s *System) warmPlansAsync() {
	n := int(s.warmN.Load())
	if n <= 0 || s.warmCtx == nil || !s.warmBusy.CompareAndSwap(false, true) {
		return
	}
	s.warmWG.Add(1)
	go func() {
		defer s.warmWG.Done()
		defer s.warmBusy.Store(false)
		_, _ = s.WarmPlans(s.warmCtx, n)
	}()
}

// savePlanShapes persists the shape ring to dir/planshapes.bin
// (atomically; the file is a hint, but a torn write must never survive
// to poison a later load).
func (s *System) savePlanShapes(dir string) error {
	shapes, _ := s.shapes.snapshot()
	return writeFileAtomic(dir, filePlanShapes, func(f *os.File) error {
		_, err := f.Write(encodePlanShapes(shapes))
		return err
	})
}

// loadPlanShapes restores the shape ring from dir/planshapes.bin. A
// missing file is a fresh system; anything unreadable — bad magic, size
// over the cap, CRC mismatch, truncation, invalid shapes — drops the
// ring with an error for the caller to log. Never fails an open.
func (s *System) loadPlanShapes(dir string) error {
	f, err := os.Open(filepath.Join(dir, filePlanShapes))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	defer f.Close()
	buf, err := io.ReadAll(io.LimitReader(f, planShapesMaxBytes+1))
	if err != nil {
		return err
	}
	if len(buf) > planShapesMaxBytes {
		return fmt.Errorf("file exceeds %d-byte cap", planShapesMaxBytes)
	}
	shapes, err := decodePlanShapes(buf)
	if err != nil {
		return err
	}
	keys := make([]string, len(shapes))
	for i, sh := range shapes {
		req, qo := s.shapeQuery(sh)
		keys[i] = groupKey(req, qo)
	}
	s.shapes.load(shapes, keys)
	return nil
}
